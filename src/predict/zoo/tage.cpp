#include "predict/zoo/tage.h"

namespace ifprob::predict::zoo {

namespace {

/** Occupied-entry marker, OR'd above the tag bits so an empty entry
 *  (tag == 0) can never match a computed tag. */
constexpr uint16_t kTagValid = 0x8000;

/** XOR-fold the low @p len bits of @p history into @p width bits. */
inline uint32_t
foldHistory(uint64_t history, int len, int width)
{
    uint64_t v = (len >= 64)
                     ? history
                     : (history & ((uint64_t{1} << len) - 1));
    const uint32_t mask = (1u << width) - 1;
    uint32_t folded = 0;
    while (v != 0) {
        folded ^= static_cast<uint32_t>(v) & mask;
        v >>= width;
    }
    return folded;
}

/** XOR-fold the low LEN bits of @p h into W bits at compile time:
 *  LEN <= W is the identity, otherwise ceil(LEN/W) chunk XORs with
 *  constant shifts. Each fold depends only on the current history
 *  word, so consecutive events' folds overlap in the pipeline — the
 *  incremental folded-register alternative is fewer ops but chains
 *  every event on the previous one, which costs more in practice. */
template <int LEN, int W>
inline uint32_t
fold32(uint32_t h)
{
    static_assert(LEN >= 1 && LEN <= 32 && W >= 1);
    const uint32_t v = (LEN < 32) ? (h & ((1u << LEN) - 1)) : h;
    if constexpr (LEN <= W) {
        return v;
    } else {
        uint32_t f = 0;
        for (int k = 0; k * W < LEN; ++k)
            f ^= v >> (k * W);
        return f & ((1u << W) - 1);
    }
}

} // namespace

TagePredictor::TagePredictor() : TagePredictor(Config{}) {}

TagePredictor::TagePredictor(const Config &config)
    : config_(config),
      base_mask_((1u << config.log2_base) - 1),
      index_mask_((1u << config.log2_entries) - 1),
      tag_mask_(static_cast<uint16_t>((1u << config.tag_bits) - 1)),
      base_(size_t{1} << config.log2_base)
{
    for (auto &table : tables_)
        table.assign(size_t{1} << config.log2_entries, Entry{});
}

TagePredictor::Probe
TagePredictor::probe(uint32_t site, uint64_t history) const
{
    // The scalar reference path: fold the raw history from scratch on
    // every probe. The fixed kernel's compile-time folds must always
    // agree with this (the differential tests hold batch == scalar).
    Probe p;
    p.base_index = site & base_mask_;
    const bool base_pred = sat2Taken(base_.get(p.base_index));
    p.pred = base_pred;
    p.alt_pred = base_pred;
    for (int t = 0; t < kNumTables; ++t) {
        const int len = config_.history_lengths[t];
        const uint32_t fold_index =
            foldHistory(history, len, config_.log2_entries);
        const uint32_t fold_tag0 =
            foldHistory(history, len, config_.tag_bits);
        const uint32_t fold_tag1 =
            foldHistory(history, len, config_.tag_bits - 1);
        p.index[t] = (site ^ (site >> 5) ^ fold_index) & index_mask_;
        p.tag[t] = static_cast<uint16_t>(
                       (site ^ fold_tag0 ^ (fold_tag1 << 1)) &
                       tag_mask_) |
                   kTagValid;
        const Entry &e = tables_[t][p.index[t]];
        if (e.tag == p.tag[t]) {
            p.alt_pred = p.pred;        // previous best becomes alternate
            p.pred = e.ctr >= 4;
            p.provider = t;
        }
    }
    return p;
}

void
TagePredictor::applyUpdate(const Probe &p, uint32_t tk)
{
    const bool taken = tk != 0;
    const bool mispredict = p.pred != taken;

    if (p.provider >= 0) {
        Entry &e = tables_[p.provider][p.index[p.provider]];
        ++stats_.tagged_hits;
        // Useful counter tracks predictions where the provider beat the
        // alternate — the classic replacement-worthiness signal.
        if (p.pred != p.alt_pred) {
            if (p.pred == taken)
                e.u = static_cast<uint8_t>(e.u + (e.u < 3));
            else
                e.u = static_cast<uint8_t>(e.u - (e.u > 0));
        }
        e.ctr = taken ? static_cast<uint8_t>(e.ctr + (e.ctr < 7))
                      : static_cast<uint8_t>(e.ctr - (e.ctr > 0));
    } else {
        base_.set(p.base_index, sat2Next(base_.get(p.base_index), tk));
    }

    // Allocate a longer-history entry on a mispredict (single-component
    // allocation, first table whose slot's useful counter is zero).
    if (mispredict && p.provider < kNumTables - 1) {
        bool allocated = false;
        for (int t = p.provider + 1; t < kNumTables; ++t) {
            Entry &e = tables_[t][p.index[t]];
            if (e.u == 0) {
                e.tag = p.tag[t];
                e.ctr = taken ? 4 : 3; // weak, in the observed direction
                e.u = 0;
                ++stats_.allocations;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // All candidate slots defended themselves: decay their
            // useful counters so persistent pressure eventually wins.
            for (int t = p.provider + 1; t < kNumTables; ++t) {
                Entry &e = tables_[t][p.index[t]];
                e.u = static_cast<uint8_t>(e.u - (e.u > 0));
            }
            ++stats_.alloc_failures;
        }
    }

    ++tick_;
    if ((tick_ & (config_.useful_reset_period - 1)) == 0) {
        for (auto &table : tables_)
            for (Entry &e : table)
                e.u >>= 1;
        ++stats_.useful_resets;
    }
}

bool
TagePredictor::predict(int site_id) const
{
    return probe(static_cast<uint32_t>(site_id), history_).pred;
}

void
TagePredictor::update(int site_id, bool taken)
{
    const uint32_t tk = taken ? 1u : 0u;
    applyUpdate(probe(static_cast<uint32_t>(site_id), history_), tk);
    history_ = (history_ << 1) | tk;
}

template <int L0, int L1, int L2, int L3, int WI, int WT0, int WT1>
void
TagePredictor::onBatchFixed(const vm::EventBlock &block)
{
    // Merged probe+update kernel: table pointers and packed-base words
    // live in locals for the whole block; member state is read once and
    // written back once. The table walk is a fixed-trip-count loop (it
    // unrolls) with conditional-move provider selection — the only
    // data-dependent branches are the update's, whose bias the global
    // branch predictor resolves far better than it does the fold loops
    // of the scalar path.
    constexpr uint32_t kIndexMask = (1u << WI) - 1;
    constexpr uint16_t kTagMask = static_cast<uint16_t>((1u << WT0) - 1);

    Entry *tables[kNumTables];
    for (int t = 0; t < kNumTables; ++t)
        tables[t] = tables_[t].data();
    uint64_t *base_words = base_.words();

    uint64_t history = history_;
    int64_t tick = tick_;
    const int64_t reset_mask = config_.useful_reset_period - 1;
    int64_t correct = 0;
    int64_t tagged_hits = 0;
    int64_t allocations = 0;
    int64_t alloc_failures = 0;

    const int n = block.size;
    for (int i = 0; i < n; ++i) {
        const int32_t site_raw = block.site_id[i];
        if (site_raw < 0)
            continue;
        const uint32_t site = static_cast<uint32_t>(site_raw);
        const uint32_t tk = block.taken[i];
        const uint32_t site_hash = site ^ (site >> 5);

        // All twelve folds, straight off the low history word as
        // constant-shift XOR trees (see fold32).
        const uint32_t h32 = static_cast<uint32_t>(history);
        const uint32_t dfi[kNumTables] = {
            fold32<L0, WI>(h32), fold32<L1, WI>(h32),
            fold32<L2, WI>(h32), fold32<L3, WI>(h32)};
        const uint32_t dft[kNumTables] = {
            fold32<L0, WT0>(h32) ^ (fold32<L0, WT1>(h32) << 1),
            fold32<L1, WT0>(h32) ^ (fold32<L1, WT1>(h32) << 1),
            fold32<L2, WT0>(h32) ^ (fold32<L2, WT1>(h32) << 1),
            fold32<L3, WT0>(h32) ^ (fold32<L3, WT1>(h32) << 1)};

        // Probe: base read straight off the packed word...
        const uint32_t base_index = site & base_mask_;
        const uint32_t base_shift = (base_index & 31) * 2;
        uint64_t &base_word = base_words[base_index >> 5];
        const uint32_t base_c =
            static_cast<uint32_t>(base_word >> base_shift) & 3;
        bool pred = base_c >= 2;
        bool alt_pred = pred;
        int provider = -1;
        uint32_t idx[kNumTables];
        uint16_t tag[kNumTables];
        // ...then the tagged walk, longest-match-wins via cmovs.
        for (int t = 0; t < kNumTables; ++t) {
            idx[t] = (site_hash ^ dfi[t]) & kIndexMask;
            tag[t] = static_cast<uint16_t>((site ^ dft[t]) & kTagMask) |
                     kTagValid;
            const Entry e = tables[t][idx[t]];
            const bool hit = e.tag == tag[t];
            alt_pred = hit ? pred : alt_pred;
            pred = hit ? (e.ctr >= 4) : pred;
            provider = hit ? t : provider;
        }

        const bool taken = tk != 0;
        correct += (pred == taken);
        const bool mispredict = pred != taken;

        // Update: identical transitions to applyUpdate(), on the
        // hoisted pointers, with stats accumulated in locals.
        if (provider >= 0) {
            Entry &e = tables[provider][idx[provider]];
            ++tagged_hits;
            if (pred != alt_pred) {
                if (!mispredict)
                    e.u = static_cast<uint8_t>(e.u + (e.u < 3));
                else
                    e.u = static_cast<uint8_t>(e.u - (e.u > 0));
            }
            e.ctr = taken ? static_cast<uint8_t>(e.ctr + (e.ctr < 7))
                          : static_cast<uint8_t>(e.ctr - (e.ctr > 0));
        } else {
            const uint32_t next =
                tk ? base_c + (base_c < 3) : base_c - (base_c > 0);
            // Saturated-counter skip: packed neighbours share the
            // word; the steady state needs no store.
            if (base_c != next)
                base_word ^= static_cast<uint64_t>(base_c ^ next)
                             << base_shift;
        }

        if (mispredict && provider < kNumTables - 1) {
            bool allocated = false;
            for (int t = provider + 1; t < kNumTables; ++t) {
                Entry &e = tables[t][idx[t]];
                if (e.u == 0) {
                    e.tag = tag[t];
                    e.ctr = taken ? 4 : 3;
                    e.u = 0;
                    ++allocations;
                    allocated = true;
                    break;
                }
            }
            if (!allocated) {
                for (int t = provider + 1; t < kNumTables; ++t) {
                    Entry &e = tables[t][idx[t]];
                    e.u = static_cast<uint8_t>(e.u - (e.u > 0));
                }
                ++alloc_failures;
            }
        }

        ++tick;
        if ((tick & reset_mask) == 0) {
            constexpr size_t kEntries = size_t{1} << WI;
            for (int t = 0; t < kNumTables; ++t)
                for (size_t j = 0; j < kEntries; ++j)
                    tables[t][j].u >>= 1;
            ++stats_.useful_resets;
        }

        history = (history << 1) | tk;
    }

    history_ = history;
    tick_ = tick;
    stats_.tagged_hits += tagged_hits;
    stats_.allocations += allocations;
    stats_.alloc_failures += alloc_failures;
    tally(block.branch_count, correct);
}

void
TagePredictor::onBatch(const vm::EventBlock &block)
{
    // The roster geometry gets the compile-time kernel; every other
    // configuration (tests use degenerate ones: zero-length histories,
    // 1-entry tables) takes the reference loop — same transition
    // function, per-event probes.
    const Config &c = config_;
    if (c.log2_entries == 10 && c.tag_bits == 8 &&
        c.history_lengths == std::array<int, kNumTables>{4, 8, 16, 32}) {
        onBatchFixed<4, 8, 16, 32, 10, 8, 7>(block);
        return;
    }

    int64_t correct = 0;
    const int n = block.size;
    for (int i = 0; i < n; ++i) {
        const int32_t site = block.site_id[i];
        if (site < 0)
            continue;
        const uint32_t tk = block.taken[i];
        const Probe p = probe(static_cast<uint32_t>(site), history_);
        correct += (static_cast<uint32_t>(p.pred) == tk);
        applyUpdate(p, tk);
        history_ = (history_ << 1) | tk;
    }
    tally(block.branch_count, correct);
}

} // namespace ifprob::predict::zoo

#ifndef IFPROB_PREDICT_ZOO_TAGE_H
#define IFPROB_PREDICT_ZOO_TAGE_H

#include <array>
#include <cstdint>
#include <vector>

#include "predict/dynamic_predictor.h"
#include "predict/sat2.h"
#include "vm/observer.h"

namespace ifprob::predict::zoo {

/**
 * A small TAGE predictor [Seznec and Michaud 06]: a packed 2-bit
 * bimodal base table plus four partially-tagged tables indexed by the
 * site id hashed with geometrically increasing global-history lengths
 * (4, 8, 16, 32 by default). The longest-history table whose tag
 * matches provides the prediction; mispredicts allocate an entry in a
 * longer table whose useful counter has decayed to zero.
 *
 * Deliberately modest — single-component allocation, deterministic
 * first-free-slot choice, periodic useful-counter halving — but it is
 * the real mechanism: geometric history lengths, tag match, useful
 * bits, provider/alternate bookkeeping. The point in this repo is the
 * tournament axis ROADMAP item 1 asks for: how much of the gap between
 * the paper's profile-static predictor and perfect prediction do
 * history-capturing schemes close on the same traces?
 *
 * The scalar reference recomputes every XOR-fold from the raw history
 * register on each probe, with data-dependent loops — and probes twice
 * per event (predict(), then update() re-probes). The batch kernel is
 * a template instantiated on the roster configuration's geometry, so
 * all twelve folds per event become compile-time-unrolled chunk XORs
 * of the low history word: no loop-carried fold state (the classic
 * incremental folded-history registers lose to this on wide cores —
 * their one-bit-per-event recurrence serializes the whole loop), one
 * probe, no virtual dispatch. Counter transitions are shared logic,
 * so mispredict counts are bit-identical across the three paths.
 */
class TagePredictor : public DynamicPredictor
{
  public:
    static constexpr int kNumTables = 4;

    struct Config
    {
        int log2_base = 12;    ///< bimodal base entries
        int log2_entries = 10; ///< entries per tagged table
        int tag_bits = 8;      ///< stored tag width
        std::array<int, kNumTables> history_lengths = {4, 8, 16, 32};
        /** Updates between useful-counter halvings (power of two). */
        int64_t useful_reset_period = int64_t{1} << 16;
    };

    struct Stats
    {
        int64_t allocations = 0;   ///< entries claimed on mispredicts
        int64_t alloc_failures = 0; ///< no u==0 slot; useful bits decayed
        int64_t useful_resets = 0;  ///< periodic halvings
        int64_t tagged_hits = 0;    ///< events predicted by a tagged table
    };

    TagePredictor(); ///< default Config (out of line: nested NSDMIs)
    explicit TagePredictor(const Config &config);

    void onBatch(const vm::EventBlock &block) override;

    const Stats &tageStats() const { return stats_; }

  protected:
    bool predict(int site_id) const override;
    void update(int site_id, bool taken) override;

  private:
    /** A tagged entry: tag (kTagValid-or'd when occupied), 3-bit
     *  signed-style prediction counter (taken iff >= 4), 2-bit useful
     *  counter gating replacement. */
    struct Entry
    {
        uint16_t tag = 0;
        uint8_t ctr = 0;
        uint8_t u = 0;
    };

    /** Everything one event's table walk produces; computed once per
     *  event on the batch path, twice on the scalar path (identically,
     *  since tables do not change in between). */
    struct Probe
    {
        std::array<uint32_t, kNumTables> index;
        std::array<uint16_t, kNumTables> tag;
        int provider = -1; ///< longest matching table, -1 = base
        bool pred = false;
        bool alt_pred = false; ///< next-longest match (or base)
        uint32_t base_index = 0;
    };

    Probe probe(uint32_t site, uint64_t history) const;
    void applyUpdate(const Probe &p, uint32_t tk);

    /** The batch kernel, specialized on the table geometry: history
     *  lengths L0..L3 (each in [1, 32]), index width WI and tag-hash
     *  widths WT0/WT1 as compile-time constants, so every history fold
     *  unrolls to a fixed XOR tree. onBatch() dispatches here when the
     *  running Config matches an instantiated geometry. */
    template <int L0, int L1, int L2, int L3, int WI, int WT0, int WT1>
    void onBatchFixed(const vm::EventBlock &block);

    Config config_;
    uint32_t base_mask_;
    uint32_t index_mask_;
    uint16_t tag_mask_;
    uint64_t history_ = 0;
    int64_t tick_ = 0;
    PackedSat2Table base_;
    std::array<std::vector<Entry>, kNumTables> tables_;
    Stats stats_;
};

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_TAGE_H

#include "predict/zoo/perceptron.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ifprob::predict::zoo {

namespace {

/** Saturate into int8 range; weights must not wrap. */
inline int8_t
clampWeight(int v)
{
    if (v > 127)
        return 127;
    if (v < -128)
        return -128;
    return static_cast<int8_t>(v);
}

} // namespace

PerceptronPredictor::PerceptronPredictor(int log2_rows, int history_bits)
    : history_bits_(history_bits),
      row_mask_((1u << log2_rows) - 1),
      history_mask_((uint64_t{1} << history_bits) - 1),
      theta_(static_cast<int32_t>(1.93 * history_bits + 14.0)),
      weights_((size_t{1} << log2_rows) *
                   (static_cast<size_t>(history_bits) + 1),
               0)
{
}

int32_t
PerceptronPredictor::dot(const int8_t *row, uint64_t history) const
{
    int32_t sum = row[0]; // bias weight
    for (int b = 0; b < history_bits_; ++b) {
        const int32_t w = row[b + 1];
        // +w when history bit b was taken, -w when not. m is 0 when
        // taken and -1 when not, so (w ^ m) - m is the branch-free
        // two's-complement sign select — no per-bit branch for the
        // compiler to keep, and the reduction vectorizes.
        const int32_t m =
            static_cast<int32_t>((history >> b) & 1) - 1;
        sum += (w ^ m) - m;
    }
    return sum;
}

void
PerceptronPredictor::train(int8_t *row, uint64_t history, uint32_t tk)
{
    const int dir = tk ? 1 : -1;
    row[0] = clampWeight(row[0] + dir);
    for (int b = 0; b < history_bits_; ++b) {
        // +1 when the history bit agrees with the outcome, -1 when it
        // disagrees, as a branch-free expression on the XOR of the two.
        const int delta =
            1 - 2 * static_cast<int>(((history >> b) & 1) ^ tk);
        row[b + 1] = clampWeight(row[b + 1] + delta);
    }
    ++trainings_;
}

bool
PerceptronPredictor::predict(int site_id) const
{
    const size_t row = (static_cast<uint32_t>(site_id) & row_mask_) *
                       (static_cast<size_t>(history_bits_) + 1);
    return dot(&weights_[row], history_) >= 0;
}

void
PerceptronPredictor::update(int site_id, bool taken)
{
    const uint32_t tk = taken ? 1u : 0u;
    const size_t row = (static_cast<uint32_t>(site_id) & row_mask_) *
                       (static_cast<size_t>(history_bits_) + 1);
    const int32_t sum = dot(&weights_[row], history_);
    const bool pred = sum >= 0;
    if (pred != taken || (sum < 0 ? -sum : sum) <= theta_)
        train(&weights_[row], history_, tk);
    history_ = ((history_ << 1) | tk) & history_mask_;
}

namespace {

/**
 * The batched dot's sign state: the newest 16 history bits mirrored
 * as byte lanes (0x00 = taken, 0xff = not taken, history bit 0 in
 * lane 0) — the sign each weight contributes with, in the layout the
 * wide dot consumes. Two implementations behind one tiny interface,
 * both computing the scalar dot() bit for bit:
 *
 *  - SSE2 (x86-64 baseline): select (w ^ 0x80) into taken lanes and
 *    the neutral bias byte 0x80 into the rest, psadbw each selection
 *    against zero, subtract — the per-half +8*128 biases cancel,
 *    leaving the exact signed dot with no multiplies and no int8
 *    wrap cases.
 *  - portable SWAR on two uint64 halves: lanewise sign-select and a
 *    multiply-fold reduction, with an explicit correction for the one
 *    unrepresentable lane value (negating a saturated -128 weight
 *    should give +128; the byte lane wraps back to -128).
 */
#if defined(__SSE2__)

using DotMask = __m128i;

inline DotMask
maskFromHalves(uint64_t m_lo, uint64_t m_hi)
{
    return _mm_set_epi64x(static_cast<long long>(m_hi),
                          static_cast<long long>(m_lo));
}

/** Exact dot of 16 int8 weights against the sign lanes of @p m. */
inline int32_t
dot16(const int8_t *lanes, DotMask m)
{
    const __m128i k80 = _mm_set1_epi8(static_cast<char>(0x80));
    const __m128i w =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(lanes));
    const __m128i t = _mm_xor_si128(w, k80);
    const __m128i taken =
        _mm_or_si128(_mm_andnot_si128(m, t), _mm_and_si128(m, k80));
    const __m128i not_taken =
        _mm_or_si128(_mm_and_si128(m, t), _mm_andnot_si128(m, k80));
    const __m128i d =
        _mm_sub_epi32(_mm_sad_epu8(taken, _mm_setzero_si128()),
                      _mm_sad_epu8(not_taken, _mm_setzero_si128()));
    return _mm_cvtsi128_si32(d) +
           _mm_cvtsi128_si32(_mm_shuffle_epi32(d, _MM_SHUFFLE(0, 0, 0, 2)));
}

/** Bit b set iff history bit b was not taken (for the train loop). */
inline uint32_t
notTakenBits(DotMask m)
{
    return static_cast<uint32_t>(_mm_movemask_epi8(m));
}

inline DotMask
advanceMask(DotMask m, uint32_t tk)
{
    // New lane 0 byte: 0x00 when taken, 0xff when not — branch-free
    // off tk - 1.
    const __m128i newest =
        _mm_cvtsi32_si128(static_cast<int>(0xffu & (tk - 1u)));
    return _mm_or_si128(_mm_slli_si128(m, 1), newest);
}

#else // portable SWAR fallback

/** Sum the eight signed-byte lanes of @p v exactly (SWAR widening:
 *  bias each lane by +128, pairwise-widen to 16-bit lanes, fold with a
 *  multiply, un-bias). */
inline int32_t
swarSumInt8(uint64_t v)
{
    constexpr uint64_t kLo8 = 0x00ff00ff00ff00ffull;
    const uint64_t biased = v ^ 0x8080808080808080ull;
    const uint64_t pairs = (biased & kLo8) + ((biased >> 8) & kLo8);
    const uint32_t total = static_cast<uint32_t>(
        (pairs * 0x0001000100010001ull) >> 48);
    return static_cast<int32_t>(total) - 8 * 128;
}

/** Bytewise (w ^ m) - m where every @p m byte is 0x00 (taken history
 *  bit: +w) or 0xff (not taken: -w) — the eight-lane version of the
 *  scalar sign select. Subtracting 0xff is adding 1 mod 256, so the
 *  borrow-free SWAR add of (m & 0x01..01) suffices. */
inline uint64_t
swarSignSelect(uint64_t w, uint64_t m)
{
    const uint64_t a = w ^ m;
    const uint64_t one = m & 0x0101010101010101ull;
    return ((a & 0x7f7f7f7f7f7f7f7full) + one) ^
           (a & 0x8080808080808080ull);
}

/** Exact dot of eight int8 weights against sign-mask bytes. The one
 *  case the lanewise select cannot represent is w == -128 under
 *  negation (the true term, +128, wraps back to -128 in int8; the
 *  scalar dot computes it in int32) — and saturated weights are the
 *  common case on strongly biased branches, so detect those lanes and
 *  add the missing 256 per wrap. */
inline int32_t
swarDot8(uint64_t w, uint64_t m)
{
    constexpr uint64_t k7f = 0x7f7f7f7f7f7f7f7full;
    constexpr uint64_t k80 = 0x8080808080808080ull;
    constexpr uint64_t k01 = 0x0101010101010101ull;
    const uint64_t low7 = w & k7f;
    // Byte == -128 (0x80): sign bit set, low seven bits zero. The
    // zero test must not borrow or carry across lanes — low7 + 0x7f
    // sets a lane's bit 7 iff the lane was nonzero, and stays within
    // the lane because low7 <= 0x7f. (The usual (v - k01) & ~v detect
    // is wrong here: a zero lane's borrow can mark the lane above.)
    const uint64_t zeros = ~(low7 + k7f) & k80;
    const uint64_t wraps = zeros & w & m;
    const int32_t wrapped =
        static_cast<int32_t>(((wraps >> 7) * k01) >> 56);
    return swarSumInt8(swarSignSelect(w, m)) + (wrapped << 8);
}

struct DotMask
{
    uint64_t lo;
    uint64_t hi;
};

inline DotMask
maskFromHalves(uint64_t m_lo, uint64_t m_hi)
{
    return {m_lo, m_hi};
}

inline int32_t
dot16(const int8_t *lanes, const DotMask &m)
{
    uint64_t w_lo, w_hi;
    std::memcpy(&w_lo, lanes, sizeof(w_lo));
    std::memcpy(&w_hi, lanes + 8, sizeof(w_hi));
    return swarDot8(w_lo, m.lo) + swarDot8(w_hi, m.hi);
}

inline uint32_t
notTakenBits(const DotMask &m)
{
    // movemask emulation: the lanes are 0x00/0xff, so gather each
    // half's low lane bits into the top byte with one multiply.
    constexpr uint64_t kGather = 0x0102040810204080ull;
    constexpr uint64_t k01 = 0x0101010101010101ull;
    const uint32_t lo =
        static_cast<uint32_t>(((m.lo & k01) * kGather) >> 56);
    const uint32_t hi =
        static_cast<uint32_t>(((m.hi & k01) * kGather) >> 56);
    return lo | (hi << 8);
}

inline DotMask
advanceMask(const DotMask &m, uint32_t tk)
{
    return {(m.lo << 8) | (0xffull & (tk - 1u)),
            (m.hi << 8) | (m.lo >> 56)};
}

#endif

} // namespace

template <int H>
void
PerceptronPredictor::onBatchFixed(const vm::EventBlock &block)
{
    static_assert(H == 16, "SWAR kernel assumes two 8-lane words");
    constexpr size_t kRowWidth = static_cast<size_t>(H) + 1;
    int8_t *weights = weights_.data();
    uint64_t history = history_;
    int64_t correct = 0;
    int64_t trainings = 0;

    // Sign-mask mirror of the history register: byte b is 0x00 when
    // history bit b is set (taken: the dot adds +w) and 0xff when
    // clear (-w), bit 0 (the newest outcome) in lane 0. Rebuilt from
    // the history at block entry, shifted one lane per event — so the
    // per-event dot needs no per-bit extraction at all.
    uint64_t m_lo = 0;
    uint64_t m_hi = 0;
    for (int b = 7; b >= 0; --b) {
        m_lo = (m_lo << 8) | (((history >> b) & 1) ? 0x00ull : 0xffull);
        m_hi = (m_hi << 8) |
               (((history >> (b + 8)) & 1) ? 0x00ull : 0xffull);
    }
    DotMask mask = maskFromHalves(m_lo, m_hi);

    const int n = block.size;
    for (int i = 0; i < n; ++i) {
        const int32_t site = block.site_id[i];
        if (site < 0)
            continue;
        const uint32_t tk = block.taken[i];
        int8_t *row =
            weights + (static_cast<uint32_t>(site) & row_mask_) * kRowWidth;
        // One probe serves both the score and the training decision —
        // the scalar path computes the same dot twice (predict, then
        // update). dot16 is exact integer arithmetic, so the sum
        // equals dot(row, history) bit for bit (the differential tests
        // hold batch == scalar).
        const int32_t sum =
            static_cast<int32_t>(row[0]) + dot16(row + 1, mask);
        const uint32_t pred = sum >= 0;
        correct += (pred == tk);
        if (pred != tk || (sum < 0 ? -sum : sum) <= theta_) {
            const int dir = tk ? 1 : -1;
            row[0] = clampWeight(row[0] + dir);
            const uint32_t nb = notTakenBits(mask);
            for (int b = 0; b < H; ++b) {
                // Mask bit b is set for a not-taken history bit, so
                // flip it to recover (history >> b) & 1 — identical
                // deltas to train().
                const int bit = static_cast<int>(((nb >> b) & 1u) ^ 1u);
                const int delta = 1 - 2 * (bit ^ static_cast<int>(tk));
                row[b + 1] = clampWeight(row[b + 1] + delta);
            }
            ++trainings;
        }
        history = ((history << 1) | tk) & history_mask_;
        mask = advanceMask(mask, tk);
    }
    history_ = history;
    trainings_ += trainings;
    tally(block.branch_count, correct);
}

void
PerceptronPredictor::onBatch(const vm::EventBlock &block)
{
    // The roster configuration gets the unrolled kernel; any other
    // history length takes the generic loop below (same arithmetic,
    // runtime trip counts).
    if (history_bits_ == 16) {
        onBatchFixed<16>(block);
        return;
    }
    const size_t row_width = static_cast<size_t>(history_bits_) + 1;
    int8_t *weights = weights_.data();
    uint64_t history = history_;
    int64_t correct = 0;
    const int n = block.size;
    for (int i = 0; i < n; ++i) {
        const int32_t site = block.site_id[i];
        if (site < 0)
            continue;
        const uint32_t tk = block.taken[i];
        int8_t *row =
            weights + (static_cast<uint32_t>(site) & row_mask_) * row_width;
        const int32_t sum = dot(row, history);
        const uint32_t pred = sum >= 0;
        correct += (pred == tk);
        if (pred != tk || (sum < 0 ? -sum : sum) <= theta_)
            train(row, history, tk);
        history = ((history << 1) | tk) & history_mask_;
    }
    history_ = history;
    tally(block.branch_count, correct);
}

} // namespace ifprob::predict::zoo

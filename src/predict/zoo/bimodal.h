#ifndef IFPROB_PREDICT_ZOO_BIMODAL_H
#define IFPROB_PREDICT_ZOO_BIMODAL_H

#include <cstdint>

#include "predict/dynamic_predictor.h"
#include "predict/sat2.h"
#include "vm/observer.h"

namespace ifprob::predict::zoo {

/**
 * Finite-table bimodal predictor [Smith 81]: 2-bit saturating counters
 * indexed by the low bits of the static site id, packed 32 counters per
 * 64-bit word (predict/sat2.h). Unlike TwoBitPredictor's idealized
 * per-site table, a small bimodal table aliases — the zoo runs two
 * sizes so the tournament shows the aliasing penalty directly.
 *
 * The batch kernel inlines the packed read-modify-write: extract the
 * 2-bit field, score predict-before-update, and XOR the changed bits
 * back — branch-free except for the break-marker skip, which the dense
 * (no-break) block path drops entirely.
 */
class BimodalPredictor : public DynamicPredictor
{
  public:
    /** @p log2_entries in [5, 30] (at least one packed word). */
    explicit BimodalPredictor(int log2_entries)
        : mask_((1u << log2_entries) - 1),
          table_(size_t{1} << log2_entries)
    {
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        uint64_t *words = table_.words();
        int64_t correct = 0;
        const int n = block.size;
        if (block.branch_count == n) {
            // Dense block: no break markers, no per-event skip test.
            for (int i = 0; i < n; ++i)
                correct += stepPacked(words, block.site_id[i],
                                      block.taken[i]);
        } else {
            for (int i = 0; i < n; ++i) {
                if (block.site_id[i] < 0)
                    continue;
                correct += stepPacked(words, block.site_id[i],
                                      block.taken[i]);
            }
        }
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return sat2Taken(table_.get(index(site_id)));
    }

    void
    update(int site_id, bool taken) override
    {
        const size_t idx = index(site_id);
        table_.set(idx, sat2Next(table_.get(idx), taken ? 1u : 0u));
    }

  private:
    size_t
    index(int site_id) const
    {
        return static_cast<uint32_t>(site_id) & mask_;
    }

    /** One packed predict-then-update; returns 1 when correct. The
     *  store is skipped when the counter is already saturated in the
     *  observed direction — the common steady state — because
     *  neighbouring sites share a packed word, and an unconditional
     *  read-modify-write chains consecutive loop branches through
     *  store-to-load forwarding. */
    int64_t
    stepPacked(uint64_t *words, int32_t site, uint32_t tk) const
    {
        const uint32_t idx = static_cast<uint32_t>(site) & mask_;
        uint64_t &word = words[idx >> 5];
        const unsigned shift = (idx & 31) * 2;
        const uint32_t c = static_cast<uint32_t>(word >> shift) & 3;
        const uint32_t next = tk ? c + (c < 3) : c - (c > 0);
        if (c != next)
            word ^= static_cast<uint64_t>(c ^ next) << shift;
        return (c >= 2) == tk;
    }

    uint32_t mask_;
    PackedSat2Table table_;
};

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_BIMODAL_H

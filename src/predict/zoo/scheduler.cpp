#include "predict/zoo/scheduler.h"

#include <memory>

#include "exec/pool.h"
#include "obs/metrics.h"
#include "trace/trace.h"
#include "vm/observer.h"
#include "workloads/workload.h"

namespace ifprob::predict::zoo {

double
PredictorScore::mispredictPercent() const
{
    if (branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(mispredicts) /
           static_cast<double>(branches);
}

double
PredictorScore::instructionsPerMispredict(int64_t instructions) const
{
    if (mispredicts == 0)
        return static_cast<double>(instructions);
    return static_cast<double>(instructions) /
           static_cast<double>(mispredicts);
}

std::vector<Cell>
primaryCells()
{
    std::vector<Cell> cells;
    for (const workloads::Workload &w : workloads::all())
        cells.push_back({w.name, w.datasets.front().name});
    return cells;
}

std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    for (const workloads::Workload &w : workloads::all())
        for (const workloads::Dataset &d : w.datasets)
            cells.push_back({w.name, d.name});
    return cells;
}

std::vector<CellScores>
runTournament(harness::Runner &runner, const std::vector<Cell> &cells,
              const std::vector<ZooSpec> &zoo, exec::Pool *pool)
{
    std::vector<CellScores> results(cells.size());
    exec::Pool &workers = pool != nullptr ? *pool : exec::globalPool();
    exec::parallelFor(workers, cells.size(), [&](size_t i) {
        const Cell &cell = cells[i];
        const trace::Trace &trace =
            runner.traceOf(cell.workload, cell.dataset);
        const ZooContext context{runner.program(cell.workload),
                                 trace.stats, trace.fingerprint,
                                 cell.workload};

        std::vector<std::unique_ptr<DynamicPredictor>> predictors;
        std::vector<vm::BranchObserver *> observers;
        predictors.reserve(zoo.size());
        observers.reserve(zoo.size());
        for (const ZooSpec &spec : zoo) {
            predictors.push_back(spec.make(context));
            observers.push_back(predictors.back().get());
        }

        // One decode of the trace feeds every predictor's batch kernel.
        trace::replay(trace, observers);

        CellScores &out = results[i];
        out.cell = cell;
        out.instructions = trace.stats.instructions;
        out.branch_events = trace.branch_events;
        out.branches.reserve(zoo.size());
        out.mispredicts.reserve(zoo.size());
        for (const auto &p : predictors) {
            out.branches.push_back(p->total());
            out.mispredicts.push_back(p->mispredicted());
        }

        obs::counter("predict.cells").add(1);
        obs::counter("predict.predictors")
            .add(static_cast<int64_t>(zoo.size()));
        obs::counter("predict.events")
            .add(trace.branch_events *
                 static_cast<int64_t>(zoo.size()));
    });
    return results;
}

std::vector<PredictorScore>
aggregate(const std::vector<CellScores> &cells,
          const std::vector<ZooSpec> &zoo, int64_t *instructions_out)
{
    std::vector<PredictorScore> scores(zoo.size());
    for (size_t p = 0; p < zoo.size(); ++p) {
        scores[p].name = zoo[p].name;
        scores[p].family = zoo[p].family;
        scores[p].dynamic = zoo[p].dynamic;
    }
    int64_t instructions = 0;
    for (const CellScores &cell : cells) {
        instructions += cell.instructions;
        for (size_t p = 0; p < zoo.size(); ++p) {
            scores[p].branches += cell.branches[p];
            scores[p].mispredicts += cell.mispredicts[p];
        }
    }
    if (instructions_out != nullptr)
        *instructions_out = instructions;
    return scores;
}

} // namespace ifprob::predict::zoo

#ifndef IFPROB_PREDICT_ZOO_TWOLEVEL_H
#define IFPROB_PREDICT_ZOO_TWOLEVEL_H

#include <cstdint>

#include "predict/dynamic_predictor.h"
#include "predict/sat2.h"
#include "vm/observer.h"

namespace ifprob::predict::zoo {

/**
 * Two-level adaptive predictor in the GAs configuration [Yeh and Patt
 * 92] / gselect [McFarling 93]: one global history register selects
 * among per-address pattern-table columns by *concatenating* site bits
 * with history bits — index = (site << history_bits) | history — into a
 * shared table of packed 2-bit counters. The sibling gshare scheme
 * (XOR instead of concatenation) lives in predict/dynamic_predictor.h;
 * running both in the zoo shows what the XOR fold buys.
 *
 * Scalar reference = predict()/update() through the PackedSat2Table
 * accessors; the batch kernel inlines the same packed arithmetic with
 * the history register hoisted into a local.
 */
class GSelectPredictor : public DynamicPredictor
{
  public:
    /** @p log2_entries in [5, 30]; @p history_bits in [0, 16]. */
    explicit GSelectPredictor(int log2_entries, int history_bits = 6)
        : mask_((1u << log2_entries) - 1),
          history_bits_(history_bits),
          history_mask_((1u << history_bits) - 1),
          table_(size_t{1} << log2_entries)
    {
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        uint64_t *words = table_.words();
        uint32_t history = history_;
        int64_t correct = 0;
        const int n = block.size;
        for (int i = 0; i < n; ++i) {
            const int32_t site = block.site_id[i];
            if (site < 0)
                continue;
            const uint32_t tk = block.taken[i];
            const uint32_t idx =
                ((static_cast<uint32_t>(site) << history_bits_) |
                 history) &
                mask_;
            uint64_t &word = words[idx >> 5];
            const unsigned shift = (idx & 31) * 2;
            const uint32_t c = static_cast<uint32_t>(word >> shift) & 3;
            correct += ((c >= 2) == tk);
            const uint32_t next = tk ? c + (c < 3) : c - (c > 0);
            // Saturated-counter skip: see BimodalPredictor::stepPacked —
            // packed neighbours share the word, and the steady state
            // needs no store.
            if (c != next)
                word ^= static_cast<uint64_t>(c ^ next) << shift;
            history = ((history << 1) | tk) & history_mask_;
        }
        history_ = history;
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return sat2Taken(table_.get(index(site_id)));
    }

    void
    update(int site_id, bool taken) override
    {
        const uint32_t tk = taken ? 1u : 0u;
        const size_t idx = index(site_id);
        table_.set(idx, sat2Next(table_.get(idx), tk));
        history_ = ((history_ << 1) | tk) & history_mask_;
    }

  private:
    size_t
    index(int site_id) const
    {
        return ((static_cast<uint32_t>(site_id) << history_bits_) |
                history_) &
               mask_;
    }

    uint32_t mask_;
    int history_bits_;
    uint32_t history_mask_;
    uint32_t history_ = 0;
    PackedSat2Table table_;
};

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_TWOLEVEL_H

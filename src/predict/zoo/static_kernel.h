#ifndef IFPROB_PREDICT_ZOO_STATIC_KERNEL_H
#define IFPROB_PREDICT_ZOO_STATIC_KERNEL_H

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "predict/dynamic_predictor.h"
#include "vm/observer.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ifprob::predict::zoo {

/** Sum of @p n bytes. Exact for any byte values as long as the total
 *  stays under 2^31 (a block is at most vm::EventBlock::kCapacity
 *  bytes of 0/1 flags, nowhere close). */
inline int64_t
sumBytes(const uint8_t *p, int n)
{
    int64_t sum = 0;
    int i = 0;
#if defined(__SSE2__)
    __m128i acc = _mm_setzero_si128();
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + i));
        acc = _mm_add_epi64(acc, _mm_sad_epu8(v, _mm_setzero_si128()));
    }
    sum = _mm_cvtsi128_si32(acc) +
          _mm_cvtsi128_si32(_mm_shuffle_epi32(acc, _MM_SHUFFLE(0, 0, 0, 2)));
#else
    for (; i + 8 <= n; i += 8) {
        uint64_t x;
        std::memcpy(&x, p + i, 8);
        x = (x & 0x00ff00ff00ff00ffull) +
            ((x >> 8) & 0x00ff00ff00ff00ffull);
        x = (x & 0x0000ffff0000ffffull) +
            ((x >> 16) & 0x0000ffff0000ffffull);
        sum += static_cast<int64_t>((x & 0xffffffffull) + (x >> 32));
    }
#endif
    for (; i < n; ++i)
        sum += p[i];
    return sum;
}

/**
 * A lowered static predictor scored event-by-event: one direction byte
 * per site (predict::lowerPredictor output), no state updates. This is
 * how the 1992 schemes — the paper's profile predictor and the
 * BTFNT/FNT/opcode heuristics — enter the tournament on equal footing
 * with the dynamic zoo: same replay, same scoring, same table.
 *
 * StaticAsDynamic (dynamic_predictor.h) serves the same role through a
 * virtual call per event against a borrowed StaticPredictor; this
 * kernel owns the flat direction table, so a fan-out replay scores a
 * static scheme at one load + compare per event — and an all-same
 * table (the always-taken / always-not-taken baselines) at a SIMD
 * byte sum of the block's taken flags.
 */
class StaticDirectionPredictor : public DynamicPredictor
{
  public:
    /** @p directions: one 0/1 byte per static site, indexed by site id
     *  (events at sites past the end are counted via predict() = false,
     *  which cannot happen for traces of the lowered program). */
    explicit StaticDirectionPredictor(std::vector<uint8_t> directions)
        : directions_(std::move(directions))
    {
        // An all-same direction table (always-taken / always-not-taken)
        // needs no site lookup at all: correct = sum(taken) for taken,
        // branch_count - sum(taken) for not-taken. Break markers carry
        // taken == 0 (trace decode zeroes them), so the raw byte sum
        // over the block is already the branch-only sum.
        constant_ = !directions_.empty();
        const uint8_t first = directions_.empty() ? 0 : directions_[0];
        for (uint8_t d : directions_) {
            if (d != first) {
                constant_ = false;
                break;
            }
        }
        constant_dir_ = first;
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        if (constant_) {
            const int64_t taken_sum = sumBytes(block.taken, block.size);
            tally(block.branch_count,
                  constant_dir_ ? taken_sum
                                : block.branch_count - taken_sum);
            return;
        }
        const uint8_t *dirs = directions_.data();
        int64_t correct = 0;
        const int n = block.size;
        if (block.branch_count == n) {
            for (int i = 0; i < n; ++i)
                correct +=
                    (dirs[static_cast<uint32_t>(block.site_id[i])] ==
                     block.taken[i]);
        } else {
            for (int i = 0; i < n; ++i) {
                const int32_t site = block.site_id[i];
                if (site < 0)
                    continue;
                correct += (dirs[static_cast<uint32_t>(site)] ==
                            block.taken[i]);
            }
        }
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return directions_[static_cast<size_t>(site_id)] != 0;
    }

    void update(int, bool) override {}

  private:
    std::vector<uint8_t> directions_;
    bool constant_ = false;
    uint8_t constant_dir_ = 0;
};

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_STATIC_KERNEL_H

#ifndef IFPROB_PREDICT_ZOO_SCHEDULER_H
#define IFPROB_PREDICT_ZOO_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "exec/pool.h"
#include "harness/runner.h"
#include "predict/zoo/zoo.h"

namespace ifprob::predict::zoo {

/**
 * The zoo scheduler: replays every (workload, dataset) trace exactly
 * once through the whole roster — one decode pass fans each EventBlock
 * out to N predictor batch kernels (trace::replay's observer-vector
 * overload) — and parallelizes across the cell matrix on exec::Pool.
 *
 * Per-cell work is independent (fresh predictor instances per cell, no
 * shared mutable state), results land in a slot vector indexed by cell,
 * and aggregation is a serial fold afterwards, so jobs=1 and jobs=N
 * produce bit-identical scores (tests/test_predictors.cpp holds this).
 */

/** One (workload, dataset) tournament cell. */
struct Cell
{
    std::string workload;
    std::string dataset;
};

/** One cell's scores: totals from the trace plus one (branches,
 *  mispredicts) pair per zoo member, indexed like the roster. */
struct CellScores
{
    Cell cell;
    int64_t instructions = 0;
    int64_t branch_events = 0;
    std::vector<int64_t> branches;    ///< events each predictor scored
    std::vector<int64_t> mispredicts; ///< of which mispredicted
};

/** Roster-aligned aggregate over all cells. */
struct PredictorScore
{
    std::string name;
    std::string family;
    bool dynamic = false;
    int64_t branches = 0;
    int64_t mispredicts = 0;

    double mispredictPercent() const;
    /** The paper's figure of merit: executed instructions per
     *  mispredicted branch (higher is better). */
    double instructionsPerMispredict(int64_t instructions) const;
};

/** Every primary-dataset cell (workloads::all(), datasets.front()). */
std::vector<Cell> primaryCells();

/** Every (workload, dataset) cell of the full matrix. */
std::vector<Cell> allCells();

/**
 * Record (or reuse) each cell's trace via @p runner and replay it once
 * through fresh instances of every @p zoo member. Returns per-cell
 * scores in input order. @p pool overrides the worker pool (nullptr =
 * exec::globalPool(); tests pass explicit 1- and 4-worker pools to
 * hold the scores bit-identical). Counters: predict.cells,
 * predict.predictors, predict.events (events scored = cells x branch
 * events), all bumped once per cell.
 */
std::vector<CellScores> runTournament(harness::Runner &runner,
                                      const std::vector<Cell> &cells,
                                      const std::vector<ZooSpec> &zoo,
                                      exec::Pool *pool = nullptr);

/** Fold per-cell scores into roster-aligned totals, plus the summed
 *  instruction count (the instructions-per-mispredict denominator is
 *  shared by every predictor: same traces, same instruction stream). */
std::vector<PredictorScore> aggregate(const std::vector<CellScores> &cells,
                                      const std::vector<ZooSpec> &zoo,
                                      int64_t *instructions_out = nullptr);

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_SCHEDULER_H

#ifndef IFPROB_PREDICT_ZOO_PERCEPTRON_H
#define IFPROB_PREDICT_ZOO_PERCEPTRON_H

#include <cstdint>
#include <vector>

#include "predict/dynamic_predictor.h"
#include "vm/observer.h"

namespace ifprob::predict::zoo {

/**
 * Perceptron branch predictor [Jimenez and Lin 01]: one row of signed
 * 8-bit weights per (hashed) site, dotted against the global history
 * register; predict taken when the sum is non-negative, train on a
 * mispredict or whenever |sum| <= theta (theta = 1.93 * history + 14,
 * the paper's tuned threshold). The linearly-separable branches it
 * captures are exactly the long-history correlations the counter
 * schemes miss — and its per-event cost (a 17-term dot product) is why
 * the batched kernel matters: the scalar observer pays the dot product
 * twice (predict, then update re-probes), the batch kernel once.
 */
class PerceptronPredictor : public DynamicPredictor
{
  public:
    /** @p log2_rows rows of @p history_bits+1 weights (bias first);
     *  @p history_bits in [1, 62]. */
    explicit PerceptronPredictor(int log2_rows = 9, int history_bits = 16);

    void onBatch(const vm::EventBlock &block) override;

    /** Training events (mispredict or below-threshold), for tests. */
    int64_t trainings() const { return trainings_; }

  protected:
    bool predict(int site_id) const override;
    void update(int site_id, bool taken) override;

  private:
    /** Dot product of a row against @p history: bias + sum of
     *  (+w) for history-bit 1, (-w) for 0. */
    int32_t dot(const int8_t *row, uint64_t history) const;
    /** Clamped-weight training step toward outcome @p tk. */
    void train(int8_t *row, uint64_t history, uint32_t tk);
    /** Batch loop specialized on the history length: with H a compile-
     *  time constant the dot/train loops fully unroll (the generic
     *  onBatch body, instantiated for the roster's configuration). */
    template <int H> void onBatchFixed(const vm::EventBlock &block);

    int history_bits_;
    uint32_t row_mask_;
    uint64_t history_mask_;
    int32_t theta_;
    uint64_t history_ = 0;
    std::vector<int8_t> weights_; ///< rows * (history_bits_ + 1)
    int64_t trainings_ = 0;
};

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_PERCEPTRON_H

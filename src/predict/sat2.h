#ifndef IFPROB_PREDICT_SAT2_H
#define IFPROB_PREDICT_SAT2_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ifprob::predict {

/**
 * The 2-bit saturating direction counter — the one primitive every
 * counter-based predictor in this repo shares ([Smith 81] strategy 7,
 * the paper's dynamic baseline, bimodal/gshare/TAGE base tables, and the
 * characterize plane's local/global history probes).
 *
 * Conventions, fixed here so independent implementations cannot drift:
 *
 *  - state 0..3; predict taken iff state >= 2 (sat2Taken),
 *  - fresh counters start *weakly not-taken* (kSat2WeaklyNotTaken == 1),
 *  - updates saturate: +1 toward 3 on taken, -1 toward 0 on not-taken,
 *    in the branch-free form `c + (c < 3)` / `c - (c > 0)` (sat2Next),
 *  - scoring is predict-before-update: a consumer charges the
 *    prediction from the *current* state, then advances it.
 *
 * Everything is constexpr-inlinable so batch kernels pay no call.
 */

/** Initial state of a fresh counter: weakly not-taken. */
inline constexpr uint8_t kSat2WeaklyNotTaken = 1;

/** Direction the counter predicts from its current state. */
constexpr bool
sat2Taken(uint8_t state)
{
    return state >= 2;
}

/** Saturating advance: @p tk must be 0 or 1. Branch-free and identical
 *  to the if-chain (`if (tk) { if (c < 3) ++c; } else { if (c > 0) --c; }`). */
constexpr uint8_t
sat2Next(uint8_t state, uint32_t tk)
{
    return tk ? static_cast<uint8_t>(state + (state < 3))
              : static_cast<uint8_t>(state - (state > 0));
}

/** One 64-bit word of 32 packed counters, all weakly not-taken. */
inline constexpr uint64_t kSat2PackedInitWord = 0x5555555555555555ull;

/**
 * A flat table of 2-bit counters packed 32 per 64-bit word — the layout
 * the zoo's finite-table batch kernels run on. A 4096-entry bimodal
 * table is 1 KiB (vs 4 KiB byte-per-counter), so several predictors'
 * working sets fit in L1 side by side during a fan-out replay.
 *
 * The accessors are the scalar reference; batch kernels inline the same
 * shift arithmetic on words() directly (and stay bit-identical because
 * both express the one sat2Next transition function).
 */
class PackedSat2Table
{
  public:
    explicit PackedSat2Table(size_t entries)
        : words_((entries + 31) / 32, kSat2PackedInitWord)
    {
    }

    uint8_t
    get(size_t index) const
    {
        return static_cast<uint8_t>(
            (words_[index >> 5] >> ((index & 31) * 2)) & 3);
    }

    void
    set(size_t index, uint8_t state)
    {
        uint64_t &word = words_[index >> 5];
        const unsigned shift = static_cast<unsigned>((index & 31) * 2);
        word = (word & ~(uint64_t{3} << shift)) |
               (static_cast<uint64_t>(state) << shift);
    }

    /** Raw packed words for batch kernels. */
    uint64_t *words() { return words_.data(); }
    const uint64_t *words() const { return words_.data(); }

  private:
    std::vector<uint64_t> words_;
};

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_SAT2_H

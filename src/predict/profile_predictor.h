#ifndef IFPROB_PREDICT_PROFILE_PREDICTOR_H
#define IFPROB_PREDICT_PROFILE_PREDICTOR_H

#include <vector>

#include "predict/static_predictor.h"
#include "profile/profile_db.h"

namespace ifprob::predict {

/** Direction to predict for branch sites the profile never saw execute. */
enum class UnseenPolicy {
    kNotTaken, ///< forward-not-taken default
    kTaken,
};

/**
 * Profile-feedback predictor: each branch site is predicted to go in the
 * majority direction recorded in a ProfileDb — the static prediction the
 * paper's IFPROB directives encode. Decisions are precomputed, so the
 * profile database need not outlive the predictor.
 *
 * Ties predict not-taken (either choice mispredicts equally often on the
 * profiled data); sites with no recorded executions follow @p unseen.
 */
class ProfilePredictor : public StaticPredictor
{
  public:
    explicit ProfilePredictor(const profile::ProfileDb &db,
                              UnseenPolicy unseen = UnseenPolicy::kNotTaken);

    /** Unseen sites delegate to @p fallback (e.g. a heuristic predictor). */
    ProfilePredictor(const profile::ProfileDb &db,
                     const StaticPredictor &fallback);

    bool
    predictTaken(int site_id) const override
    {
        return decisions_[static_cast<size_t>(site_id)];
    }

    size_t numSites() const { return decisions_.size(); }

  private:
    std::vector<bool> decisions_;
};

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_PROFILE_PREDICTOR_H

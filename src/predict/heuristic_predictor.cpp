#include "predict/heuristic_predictor.h"

namespace ifprob::predict {

using isa::BranchKind;
using isa::BranchSite;
using isa::Opcode;

std::string_view
heuristicName(Heuristic heuristic)
{
    switch (heuristic) {
      case Heuristic::kAlwaysTaken: return "always-taken";
      case Heuristic::kAlwaysNotTaken: return "always-not-taken";
      case Heuristic::kBackwardTaken: return "backward-taken";
      case Heuristic::kOpcodeRules: return "opcode-rules";
    }
    return "?";
}

namespace {

bool
decide(const BranchSite &site, Heuristic heuristic)
{
    switch (heuristic) {
      case Heuristic::kAlwaysTaken:
        return true;
      case Heuristic::kAlwaysNotTaken:
        return false;
      case Heuristic::kBackwardTaken:
        return site.backward;
      case Heuristic::kOpcodeRules:
        if (site.kind == BranchKind::kLoop || site.backward)
            return true;
        if (site.kind == BranchKind::kSwitchCase)
            return false; // each arm of a cascade rarely matches
        switch (site.compare) {
          case Opcode::kCmpEq:
          case Opcode::kFCmpEq:
            return false; // values are rarely equal
          case Opcode::kCmpNe:
          case Opcode::kFCmpNe:
            return true;
          default:
            return false;
        }
    }
    return false;
}

} // namespace

HeuristicPredictor::HeuristicPredictor(const isa::Program &program,
                                       Heuristic heuristic)
{
    decisions_.resize(program.branch_sites.size());
    for (size_t i = 0; i < program.branch_sites.size(); ++i)
        decisions_[i] = decide(program.branch_sites[i], heuristic);
}

} // namespace ifprob::predict

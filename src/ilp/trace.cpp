#include "ilp/trace.h"

#include <algorithm>

namespace ifprob::ilp {

using isa::BlockGraph;
using isa::CfgEdge;
using isa::EdgeKind;

namespace {

/**
 * Estimate per-block execution weights from branch-site counts: a block
 * ending in a conditional branch executed exactly `site.executed` times;
 * other blocks inherit flow from their predecessors (branch edges carry
 * exact taken / not-taken counts). A few forward passes propagate the
 * flow through jump/fallthrough chains.
 */
std::vector<double>
blockWeights(const BlockGraph &graph, const isa::Function &function,
             const profile::ProfileDb &profile)
{
    const int n = graph.numBlocks();
    std::vector<double> weight(static_cast<size_t>(n), 0.0);
    for (int b = 0; b < n; ++b) {
        const isa::Instruction &last =
            function.code[static_cast<size_t>(graph.end(b) - 1)];
        if (last.op == isa::Opcode::kBr) {
            weight[static_cast<size_t>(b)] =
                profile.site(static_cast<size_t>(last.imm)).executed;
        }
    }
    for (int pass = 0; pass < 4; ++pass) {
        for (int b = 0; b < n; ++b) {
            double incoming = 0.0;
            for (const CfgEdge &edge : graph.predecessors(b)) {
                int p = edge.to; // predecessor block
                double flow;
                if (edge.kind == EdgeKind::kBranchTaken) {
                    flow = profile.site(static_cast<size_t>(
                                            edge.branch_site))
                               .taken;
                } else if (edge.kind == EdgeKind::kBranchFall) {
                    const auto &w = profile.site(
                        static_cast<size_t>(edge.branch_site));
                    flow = w.notTaken();
                } else {
                    flow = weight[static_cast<size_t>(p)];
                }
                incoming += flow;
            }
            weight[static_cast<size_t>(b)] =
                std::max(weight[static_cast<size_t>(b)], incoming);
        }
    }
    return weight;
}

} // namespace

double
TraceSet::instructionsPerExit() const
{
    if (exit_flow <= 0.0)
        return dynamic_instructions;
    return dynamic_instructions / exit_flow;
}

double
TraceSet::weightedMeanLength() const
{
    double num = 0.0, den = 0.0;
    for (const Trace &t : traces) {
        num += t.weight * static_cast<double>(t.instructions);
        den += t.weight;
    }
    return den > 0.0 ? num / den : 0.0;
}

double
TraceSet::meanLength() const
{
    if (traces.empty())
        return 0.0;
    double total = 0.0;
    for (const Trace &t : traces)
        total += static_cast<double>(t.instructions);
    return total / static_cast<double>(traces.size());
}

TraceSet
selectTraces(const isa::Program &program,
             const predict::StaticPredictor &predictor,
             const profile::ProfileDb &profile)
{
    TraceSet result;
    for (size_t fi = 0; fi < program.functions.size(); ++fi) {
        const isa::Function &function = program.functions[fi];
        BlockGraph graph(function);
        const int n = graph.numBlocks();
        if (n == 0)
            continue;
        std::vector<double> weight = blockWeights(graph, function,
                                                  profile);
        std::vector<bool> assigned(static_cast<size_t>(n), false);

        // Seeds in decreasing weight order.
        std::vector<int> order(static_cast<size_t>(n));
        for (int b = 0; b < n; ++b)
            order[static_cast<size_t>(b)] = b;
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return weight[static_cast<size_t>(a)] >
                   weight[static_cast<size_t>(b)];
        });

        /** The successor edge the predictor follows out of block b, or
         *  nullptr at trace-ending terminators. */
        auto predicted_successor = [&](int b) -> const CfgEdge * {
            const auto &succs = graph.successors(b);
            if (succs.empty())
                return nullptr;
            if (succs.size() == 1)
                return &succs[0];
            // Conditional branch: follow the predicted direction.
            bool taken = predictor.predictTaken(succs[0].branch_site);
            for (const CfgEdge &edge : succs) {
                if ((edge.kind == EdgeKind::kBranchTaken) == taken)
                    return &edge;
            }
            return nullptr;
        };

        for (int seed : order) {
            if (assigned[static_cast<size_t>(seed)])
                continue;
            Trace trace;
            trace.function = static_cast<int>(fi);
            trace.weight = weight[static_cast<size_t>(seed)];
            trace.blocks.push_back(seed);
            assigned[static_cast<size_t>(seed)] = true;

            // Grow forward along predicted edges; stop at assigned
            // blocks and loop back-edges.
            int cur = seed;
            while (const CfgEdge *edge = predicted_successor(cur)) {
                int next = edge->to;
                if (assigned[static_cast<size_t>(next)] ||
                    graph.start(next) <= graph.start(cur)) {
                    break; // joins an existing trace or closes a loop
                }
                trace.blocks.push_back(next);
                assigned[static_cast<size_t>(next)] = true;
                cur = next;
            }

            // Grow backward: a predecessor joins only if the predictor
            // would flow from it into the trace head (mutual most
            // likely), preferring the heaviest such predecessor.
            cur = seed;
            while (true) {
                int best = -1;
                double best_weight = -1.0;
                for (const CfgEdge &edge : graph.predecessors(cur)) {
                    int p = edge.to;
                    if (assigned[static_cast<size_t>(p)] ||
                        graph.start(p) >= graph.start(cur)) {
                        continue;
                    }
                    const CfgEdge *follow = predicted_successor(p);
                    if (!follow || follow->to != cur)
                        continue;
                    if (weight[static_cast<size_t>(p)] > best_weight) {
                        best_weight = weight[static_cast<size_t>(p)];
                        best = p;
                    }
                }
                if (best == -1)
                    break;
                trace.blocks.insert(trace.blocks.begin(), best);
                assigned[static_cast<size_t>(best)] = true;
                cur = best;
            }

            for (int b : trace.blocks)
                trace.instructions += graph.size(b);
            result.traces.push_back(std::move(trace));
        }

        // Dynamic trace quality: estimated on-trace instructions vs the
        // flow that departs a trace (side exits, loop closures, and
        // function returns).
        std::vector<int> trace_of(static_cast<size_t>(n), -1);
        for (size_t t = result.traces.size(); t-- > 0;) {
            const Trace &trace = result.traces[t];
            if (trace.function != static_cast<int>(fi))
                continue;
            for (int b : trace.blocks)
                trace_of[static_cast<size_t>(b)] = static_cast<int>(t);
        }
        for (int b = 0; b < n; ++b) {
            double w = weight[static_cast<size_t>(b)];
            result.dynamic_instructions += w * graph.size(b);
            const auto &succs = graph.successors(b);
            if (succs.empty()) {
                result.exit_flow += w; // return/halt ends the trace
                continue;
            }
            for (const CfgEdge &edge : succs) {
                double flow;
                if (edge.kind == EdgeKind::kBranchTaken) {
                    flow = profile.site(static_cast<size_t>(
                                            edge.branch_site))
                               .taken;
                } else if (edge.kind == EdgeKind::kBranchFall) {
                    flow = profile.site(static_cast<size_t>(
                                            edge.branch_site))
                               .notTaken();
                } else {
                    flow = w;
                }
                bool same_trace =
                    trace_of[static_cast<size_t>(edge.to)] ==
                    trace_of[static_cast<size_t>(b)];
                // A backward edge within the trace (the loop closing on
                // itself) re-enters at the top: conventional trace
                // scheduling still treats it as a trace boundary.
                bool backward = graph.start(edge.to) <= graph.start(b);
                if (!same_trace || backward)
                    result.exit_flow += flow;
            }
        }
    }
    return result;
}

} // namespace ifprob::ilp

#ifndef IFPROB_ILP_TRACE_H
#define IFPROB_ILP_TRACE_H

#include <cstdint>
#include <vector>

#include "isa/cfg.h"
#include "isa/program.h"
#include "predict/static_predictor.h"
#include "profile/profile_db.h"

namespace ifprob::ilp {

/**
 * Trace selection, the compiler consumer of static branch prediction
 * that motivates the paper: a trace-scheduling compiler [Fisher 81]
 * picks a likely acyclic path through the flow graph (a *trace*) and
 * schedules it as one long candidate set, using branch predictions to
 * decide which successor to follow at each conditional branch.
 *
 * This implements the classic greedy mutual-most-likely algorithm:
 * repeatedly seed at the hottest unassigned block and grow forward and
 * backward along predicted edges, stopping at loop back-edges, already
 * assigned blocks, and returns.
 */
struct Trace
{
    int function = -1;
    std::vector<int> blocks;   ///< block indices, in control order
    int64_t instructions = 0;  ///< static length of the trace
    double weight = 0.0;       ///< execution weight of the seed block
};

struct TraceSet
{
    std::vector<Trace> traces;

    /** Dynamic instructions executed inside traces (estimated). */
    double dynamic_instructions = 0.0;
    /** Dynamic control transfers that leave their trace (side exits,
     *  loop closures, and function returns). */
    double exit_flow = 0.0;

    /**
     * The trace-quality measure: estimated dynamic instructions executed
     * per departure from a trace. A scheduler compacts whole traces, so
     * this is the effective candidate-set size it obtains; longer is
     * better. (Static trace length is a poor proxy — a predictor that
     * chains cold fallthrough blocks makes long traces nobody executes.)
     */
    double instructionsPerExit() const;

    /**
     * Average trace length in instructions, weighted by each trace's
     * execution weight.
     */
    double weightedMeanLength() const;

    /** Unweighted mean static trace length. */
    double meanLength() const;
};

/**
 * Select traces for every function of @p program, following
 * @p predictor at conditional branches. Block execution weights come
 * from @p profile (branch-site executed counts); blocks with no
 * terminating branch inherit weight from their hottest predecessor
 * edge.
 */
TraceSet selectTraces(const isa::Program &program,
                      const predict::StaticPredictor &predictor,
                      const profile::ProfileDb &profile);

} // namespace ifprob::ilp

#endif // IFPROB_ILP_TRACE_H

#ifndef IFPROB_ILP_RUNLENGTH_H
#define IFPROB_ILP_RUNLENGTH_H

#include <array>
#include <cstdint>
#include <vector>

#include "predict/static_predictor.h"
#include "vm/observer.h"

namespace ifprob::ilp {

/**
 * Bounded-memory run-length distribution: count/sum/max plus the
 * power-of-two histogram (bucket b counts runs in [2^b, 2^(b+1))).
 * This is the piece of RunLengthSummary that does not require keeping
 * every raw run, so consumers that track one distribution *per branch
 * site* (src/characterize/) can afford thousands of them: 32 buckets
 * and three scalars, mergeable across datasets.
 */
struct RunLengthHist
{
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    std::array<int64_t, 32> histogram{};

    /** Record one run of @p run instructions/events (ignored if <= 0). */
    void add(int64_t run);

    /** Fold another distribution in (cross-dataset roll-ups). */
    void merge(const RunLengthHist &other);

    double mean() const;

    /**
     * Inclusive upper bound of the bucket containing the p-th
     * percentile (p in [0, 100]); 0 when empty. Bucket resolution, not
     * an exact order statistic — the price of not keeping raw runs.
     */
    int64_t percentileUpperBound(double p) const;
};

/**
 * Distribution of run lengths between breaks in control.
 *
 * The paper points out (§3, "ILP compilers will get larger candidate
 * sets...") that the *distribution* of instructions between mispredicted
 * branches matters for ILP, not just the mean: 80 instructions followed
 * by two breaks offers far more parallelism than two runs of 40. This
 * summary captures that distribution.
 */
struct RunLengthSummary
{
    int64_t breaks = 0;            ///< number of runs observed
    int64_t instructions = 0;      ///< total instructions covered
    /** Power-of-two histogram: bucket b counts runs in [2^b, 2^(b+1)). */
    std::array<int64_t, 32> histogram{};

    double mean = 0.0;
    double geomean = 0.0;
    int64_t p10 = 0; ///< 10th percentile run length
    int64_t p50 = 0;
    int64_t p90 = 0;

    /**
     * Fraction of all instructions that live in runs of at least
     * @p min_len — the share of the program an ILP compiler could pack
     * into candidate sets of that size.
     */
    double fractionInRunsAtLeast(int64_t min_len) const;

    /** Raw run lengths (kept for percentile computation and tests). */
    std::vector<int64_t> runs;
};

/**
 * VM observer that measures run lengths between breaks under a given
 * static predictor: a break is a mispredicted conditional branch or an
 * unavoidable transfer (indirect call / its return), matching the
 * paper's Figure 2 accounting. Attach to Machine::run, then call
 * summary().
 */
class RunLengthAnalyzer : public vm::BranchObserver
{
  public:
    explicit RunLengthAnalyzer(const predict::StaticPredictor &predictor)
        : predictor_(predictor)
    {
    }

    void
    onBranch(int site_id, bool taken, int64_t instructions) override
    {
        if (predictor_.predictTaken(site_id) != taken)
            recordBreak(instructions);
    }

    void
    onUnavoidableBreak(int64_t instructions) override
    {
        recordBreak(instructions);
    }

    /** Finalize (sorts runs, computes percentiles) and return the
     *  summary. Call once, after the run completes. */
    RunLengthSummary summary(int64_t total_instructions) &&;

  private:
    void
    recordBreak(int64_t instructions)
    {
        int64_t run = instructions - last_break_;
        last_break_ = instructions;
        if (run > 0)
            runs_.push_back(run);
    }

    const predict::StaticPredictor &predictor_;
    int64_t last_break_ = 0;
    std::vector<int64_t> runs_;
};

} // namespace ifprob::ilp

#endif // IFPROB_ILP_RUNLENGTH_H

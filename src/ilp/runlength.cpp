#include "ilp/runlength.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ifprob::ilp {

void
RunLengthHist::add(int64_t run)
{
    if (run <= 0)
        return;
    ++count;
    sum += run;
    if (run > max)
        max = run;
    int bucket = std::bit_width(static_cast<uint64_t>(run)) - 1;
    if (bucket > 31)
        bucket = 31;
    ++histogram[static_cast<size_t>(bucket)];
}

void
RunLengthHist::merge(const RunLengthHist &other)
{
    count += other.count;
    sum += other.sum;
    if (other.max > max)
        max = other.max;
    for (size_t i = 0; i < histogram.size(); ++i)
        histogram[i] += other.histogram[i];
}

double
RunLengthHist::mean() const
{
    if (count <= 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

int64_t
RunLengthHist::percentileUpperBound(double p) const
{
    if (count <= 0)
        return 0;
    const double target = p / 100.0 * static_cast<double>(count);
    int64_t seen = 0;
    for (size_t i = 0; i < histogram.size(); ++i) {
        seen += histogram[i];
        if (static_cast<double>(seen) >= target && histogram[i] > 0)
            return (int64_t{1} << (i + 1)) - 1;
    }
    return (int64_t{1} << 32) - 1; // unreachable when counts are consistent
}

double
RunLengthSummary::fractionInRunsAtLeast(int64_t min_len) const
{
    if (instructions <= 0)
        return 0.0;
    int64_t covered = 0;
    for (int64_t run : runs) {
        if (run >= min_len)
            covered += run;
    }
    return static_cast<double>(covered) /
           static_cast<double>(instructions);
}

RunLengthSummary
RunLengthAnalyzer::summary(int64_t total_instructions) &&
{
    RunLengthSummary s;
    // The tail after the final break counts as one more run.
    if (total_instructions > last_break_)
        runs_.push_back(total_instructions - last_break_);
    s.runs = std::move(runs_);
    std::sort(s.runs.begin(), s.runs.end());
    s.breaks = static_cast<int64_t>(s.runs.size());
    double log_sum = 0.0;
    RunLengthHist hist;
    for (int64_t run : s.runs) {
        s.instructions += run;
        log_sum += std::log(static_cast<double>(run));
        hist.add(run);
    }
    s.histogram = hist.histogram;
    if (s.breaks > 0) {
        s.mean = static_cast<double>(s.instructions) /
                 static_cast<double>(s.breaks);
        s.geomean = std::exp(log_sum / static_cast<double>(s.breaks));
        auto pct = [&](double q) {
            size_t index = static_cast<size_t>(
                q * static_cast<double>(s.runs.size() - 1) + 0.5);
            return s.runs[index];
        };
        s.p10 = pct(0.10);
        s.p50 = pct(0.50);
        s.p90 = pct(0.90);
    }
    return s;
}

} // namespace ifprob::ilp

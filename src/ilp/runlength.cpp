#include "ilp/runlength.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ifprob::ilp {

double
RunLengthSummary::fractionInRunsAtLeast(int64_t min_len) const
{
    if (instructions <= 0)
        return 0.0;
    int64_t covered = 0;
    for (int64_t run : runs) {
        if (run >= min_len)
            covered += run;
    }
    return static_cast<double>(covered) /
           static_cast<double>(instructions);
}

RunLengthSummary
RunLengthAnalyzer::summary(int64_t total_instructions) &&
{
    RunLengthSummary s;
    // The tail after the final break counts as one more run.
    if (total_instructions > last_break_)
        runs_.push_back(total_instructions - last_break_);
    s.runs = std::move(runs_);
    std::sort(s.runs.begin(), s.runs.end());
    s.breaks = static_cast<int64_t>(s.runs.size());
    double log_sum = 0.0;
    for (int64_t run : s.runs) {
        s.instructions += run;
        log_sum += std::log(static_cast<double>(run));
        int bucket = std::bit_width(static_cast<uint64_t>(run)) - 1;
        if (bucket > 31)
            bucket = 31;
        ++s.histogram[static_cast<size_t>(bucket)];
    }
    if (s.breaks > 0) {
        s.mean = static_cast<double>(s.instructions) /
                 static_cast<double>(s.breaks);
        s.geomean = std::exp(log_sum / static_cast<double>(s.breaks));
        auto pct = [&](double q) {
            size_t index = static_cast<size_t>(
                q * static_cast<double>(s.runs.size() - 1) + 0.5);
            return s.runs[index];
        };
        s.p10 = pct(0.10);
        s.p50 = pct(0.50);
        s.p90 = pct(0.90);
    }
    return s;
}

} // namespace ifprob::ilp

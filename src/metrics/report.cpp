#include "metrics/report.h"

#include <algorithm>
#include <cctype>

#include "obs/json.h"
#include "obs/run_report.h"

namespace ifprob::metrics {

namespace {

/**
 * Terminal columns a cell occupies: UTF-8 continuation bytes
 * (0b10xxxxxx) take none, so multi-byte glyphs like the em dash count
 * as one. Identical to size() for ASCII cells, keeping historical
 * tables byte-for-byte stable. (Assumes width-1 codepoints — the only
 * non-ASCII text the tables emit.)
 */
size_t
displayWidth(const std::string &cell)
{
    size_t w = 0;
    for (unsigned char c : cell)
        w += (c & 0xc0) != 0x80;
    return w;
}

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != ',' && c != '%' && c != 'e' &&
            c != 'E' && c != 'x') {
            return false;
        }
    }
    return std::isdigit(static_cast<unsigned char>(cell.front())) ||
           cell.front() == '-' || cell.front() == '+' ||
           cell.front() == '.';
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    rows_.emplace_back(); // sentinel
}

std::string
TextTable::render() const
{
    size_t columns = header_.size();
    for (const auto &row : rows_)
        columns = std::max(columns, row.size());
    if (columns == 0)
        return "";

    std::vector<size_t> widths(columns, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], displayWidth(row[i]));
    };
    measure(header_);
    for (const auto &row : rows_)
        measure(row);

    auto render_rule = [&]() {
        std::string line;
        for (size_t i = 0; i < columns; ++i) {
            line += std::string(widths[i] + 2, '-');
            if (i + 1 < columns)
                line += "+";
        }
        line += "\n";
        return line;
    };

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t i = 0; i < columns; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            bool right = looksNumeric(cell);
            std::string pad(widths[i] - displayWidth(cell), ' ');
            line += " ";
            if (right)
                line += pad + cell;
            else
                line += cell + pad;
            line += " ";
            if (i + 1 < columns)
                line += "|";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += "\n";
        return line;
    };

    std::string out;
    if (!header_.empty()) {
        out += render_row(header_);
        out += render_rule();
    }
    for (const auto &row : rows_) {
        if (row.empty())
            out += render_rule();
        else
            out += render_row(row);
    }
    return out;
}

std::string
TextTable::renderJsonl(std::string_view table_name) const
{
    std::string out;
    for (const auto &row : rows_) {
        if (row.empty())
            continue; // rule
        obs::JsonObject o;
        o.field("schema", obs::kTableRecordSchema);
        o.field("table", table_name);
        for (size_t i = 0; i < row.size(); ++i) {
            std::string key = i < header_.size()
                                  ? header_[i]
                                  : "col" + std::to_string(i);
            o.field(key, row[i]);
        }
        out += o.str();
        out += "\n";
    }
    return out;
}

std::string
asciiBar(double value, double max_value, int width)
{
    if (width <= 0)
        return "";
    double fraction = max_value > 0.0 ? value / max_value : 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    int filled = static_cast<int>(fraction * width + 0.5);
    return std::string(static_cast<size_t>(filled), '#') +
           std::string(static_cast<size_t>(width - filled), ' ');
}

} // namespace ifprob::metrics

#include "metrics/breaks.h"

#include "predict/evaluate.h"

namespace ifprob::metrics {

BreakSummary
breaksWithoutPrediction(const vm::RunStats &stats, const BreakConfig &config)
{
    BreakSummary s;
    s.instructions = stats.instructions;
    s.cond_branch_breaks = stats.cond_branches;
    s.unavoidable_breaks = stats.indirect_calls + stats.indirect_returns;
    if (config.count_calls)
        s.call_breaks = stats.direct_calls + stats.direct_returns;
    return s;
}

BreakSummary
breaksWithPredictor(const vm::RunStats &stats,
                    const predict::StaticPredictor &predictor,
                    const BreakConfig &config)
{
    return breaksWithMispredicts(
        stats, predict::evaluate(stats, predictor).mispredicted, config);
}

BreakSummary
breaksWithMispredicts(const vm::RunStats &stats, int64_t mispredicted,
                      const BreakConfig &config)
{
    BreakSummary s;
    s.instructions = stats.instructions;
    s.cond_branch_breaks = mispredicted;
    s.unavoidable_breaks = stats.indirect_calls + stats.indirect_returns;
    if (config.count_calls)
        s.call_breaks = stats.direct_calls + stats.direct_returns;
    return s;
}

double
deadCodeFraction(int64_t instructions_without_dce,
                 int64_t instructions_with_dce)
{
    if (instructions_without_dce <= 0)
        return 0.0;
    double fraction = 1.0 - static_cast<double>(instructions_with_dce) /
                                static_cast<double>(instructions_without_dce);
    return fraction < 0.0 ? 0.0 : fraction;
}

} // namespace ifprob::metrics

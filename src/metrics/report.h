#ifndef IFPROB_METRICS_REPORT_H
#define IFPROB_METRICS_REPORT_H

#include <string>
#include <vector>

namespace ifprob::metrics {

/**
 * Fixed-width text table renderer for the experiment reports. Numeric
 * cells (detected heuristically) are right-aligned, text left-aligned.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule. */
    void addRule();

    /** Render with column separators and a rule under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/**
 * A proportional ASCII bar for the "figure" reproductions:
 * barChart(75, 100, 20) -> "###############     ".
 */
std::string asciiBar(double value, double max_value, int width);

} // namespace ifprob::metrics

#endif // IFPROB_METRICS_REPORT_H

#ifndef IFPROB_METRICS_REPORT_H
#define IFPROB_METRICS_REPORT_H

#include <string>
#include <string_view>
#include <vector>

namespace ifprob::metrics {

/**
 * Fixed-width text table renderer for the experiment reports. Numeric
 * cells (detected heuristically) are right-aligned, text left-aligned.
 * Every table can also serialize itself as JSONL (one object per row,
 * keyed by header) so the human-readable report and the
 * machine-readable one can never drift apart.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule. */
    void addRule();

    /** Render with column separators and a rule under the header. */
    std::string render() const;

    /**
     * Render as JSONL "ifprob.table.v1" records: one line per data row
     * (rules are skipped), fields keyed by the header cells plus
     * "schema" and "table" = @p table_name. All cell values are JSON
     * strings — cells already carry human formatting (commas, '%').
     */
    std::string renderJsonl(std::string_view table_name) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/**
 * A proportional ASCII bar for the "figure" reproductions:
 * barChart(75, 100, 20) -> "###############     ".
 */
std::string asciiBar(double value, double max_value, int width);

} // namespace ifprob::metrics

#endif // IFPROB_METRICS_REPORT_H

#ifndef IFPROB_METRICS_BREAKS_H
#define IFPROB_METRICS_BREAKS_H

#include <cstdint>

#include "predict/static_predictor.h"
#include "vm/run_stats.h"

namespace ifprob::metrics {

/**
 * Breaks-in-control accounting, following the paper's taxonomy (§2):
 *
 *  - Unavoidable breaks: indirect calls and their returns. Always counted.
 *  - Direct calls and returns: avoidable via inlining; counted only when
 *    @ref BreakConfig::count_calls is set (the paper's Figure 1 reports
 *    both ways; its Figure 2 ignores them).
 *  - Unconditional jumps: assumed eliminated by an ILP compiler through
 *    code layout; never counted.
 *  - Conditional branches: all counted when no prediction is used
 *    (Figure 1); only mispredicted ones counted when a predictor is in
 *    play (Figure 2 / Table 3).
 */
struct BreakConfig
{
    /** Count direct calls and their returns as breaks. */
    bool count_calls = false;
};

/** Decomposition of the break count for one run under one predictor. */
struct BreakSummary
{
    int64_t instructions = 0;
    int64_t cond_branch_breaks = 0; ///< all branches, or mispredicted only
    int64_t unavoidable_breaks = 0; ///< indirect calls + their returns
    int64_t call_breaks = 0;        ///< direct calls + returns (if counted)

    int64_t
    totalBreaks() const
    {
        return cond_branch_breaks + unavoidable_breaks + call_breaks;
    }

    /** The paper's headline measure. Infinite-break-free runs return the
     *  instruction count itself (at least one break would end the run). */
    double
    instructionsPerBreak() const
    {
        int64_t breaks = totalBreaks();
        if (breaks == 0)
            return static_cast<double>(instructions);
        return static_cast<double>(instructions) /
               static_cast<double>(breaks);
    }
};

/** Figure-1 accounting: no prediction, every conditional branch breaks. */
BreakSummary breaksWithoutPrediction(const vm::RunStats &stats,
                                     const BreakConfig &config = {});

/** Figure-2 accounting: only mispredicted conditional branches break. */
BreakSummary breaksWithPredictor(const vm::RunStats &stats,
                                 const predict::StaticPredictor &predictor,
                                 const BreakConfig &config = {});

/**
 * Figure-2 accounting with an externally computed mispredict count (the
 * analysis plane's SoA kernels produce the count without a predictor
 * object). breaksWithPredictor is exactly this composed with
 * predict::evaluate.
 */
BreakSummary breaksWithMispredicts(const vm::RunStats &stats,
                                   int64_t mispredicted,
                                   const BreakConfig &config = {});

/** Fraction of dynamic instructions DCE would have removed (Table 1). */
double deadCodeFraction(int64_t instructions_without_dce,
                        int64_t instructions_with_dce);

} // namespace ifprob::metrics

#endif // IFPROB_METRICS_BREAKS_H

#include "obs/run_report.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::obs {

std::string
renderRunRecord(const RunRecord &r)
{
    JsonObject o;
    o.field("schema", kRunRecordSchema)
        .field("workload", r.workload)
        .field("dataset", r.dataset)
        .field("fingerprint", r.fingerprint)
        .field("cache", r.cache)
        .field("stats_cache_format", r.stats_cache_format)
        .field("instructions", r.instructions)
        .field("cond_branches", r.cond_branches)
        .field("taken_branches", r.taken_branches)
        .field("self_mispredicts", r.self_mispredicts)
        .field("instr_per_mispredict", r.instr_per_mispredict)
        .field("compile_micros", r.compile_micros)
        .field("execute_micros", r.execute_micros)
        .field("engine", r.engine)
        .field("decode_micros", r.decode_micros)
        .field("jit_micros", r.jit_micros)
        .field("trace_micros", r.trace_micros);
    return o.str();
}

RunRecord
parseRunRecord(std::string_view line)
{
    JsonRecord rec = parseFlatObject(line);
    auto str = [&](const char *k) {
        auto it = rec.find(k);
        return it != rec.end() ? it->second.str : std::string();
    };
    auto num = [&](const char *k) {
        auto it = rec.find(k);
        return it != rec.end() ? it->second.num : 0.0;
    };
    if (str("schema") != kRunRecordSchema)
        throw Error("run record has schema '" + str("schema") +
                    "', expected '" + kRunRecordSchema + "'");
    RunRecord r;
    r.workload = str("workload");
    r.dataset = str("dataset");
    r.fingerprint = str("fingerprint");
    r.cache = str("cache");
    r.stats_cache_format = str("stats_cache_format"); // absent pre-binary
    r.instructions = static_cast<int64_t>(num("instructions"));
    r.cond_branches = static_cast<int64_t>(num("cond_branches"));
    r.taken_branches = static_cast<int64_t>(num("taken_branches"));
    r.self_mispredicts = static_cast<int64_t>(num("self_mispredicts"));
    r.instr_per_mispredict = num("instr_per_mispredict");
    r.compile_micros = static_cast<int64_t>(num("compile_micros"));
    r.execute_micros = static_cast<int64_t>(num("execute_micros"));
    r.engine = str("engine"); // absent in pre-engine-tag records
    r.decode_micros = static_cast<int64_t>(num("decode_micros"));
    r.jit_micros = static_cast<int64_t>(num("jit_micros"));
    r.trace_micros = static_cast<int64_t>(num("trace_micros"));
    return r;
}

struct ReportSink::Impl
{
    std::mutex mu;
    std::ofstream out; ///< opened lazily on first write
    bool decided = false; ///< global(): env var already chose on/off
};

ReportSink::ReportSink() : impl_(std::make_unique<Impl>()) {}

ReportSink::ReportSink(std::string path)
    : enabled_(!path.empty()), path_(std::move(path)),
      impl_(std::make_unique<Impl>())
{
}

ReportSink::~ReportSink() = default;

void
ReportSink::writeLine(const std::string &json)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->out.is_open()) {
        std::filesystem::path p(path_);
        if (p.has_parent_path()) {
            std::error_code ec;
            std::filesystem::create_directories(p.parent_path(), ec);
        }
        impl_->out.open(path_, std::ios::app);
        if (!impl_->out) {
            enabled_ = false; // path unwritable: degrade to disabled
            return;
        }
    }
    impl_->out << json << "\n";
    impl_->out.flush(); // every line durable: benches exit via main()
}

void
ReportSink::write(const RunRecord &record)
{
    if (!enabled_)
        return;
    writeLine(renderRunRecord(record));
}

ReportSink &
ReportSink::global()
{
    static ReportSink *sink = [] {
        auto *s = new ReportSink; // leaked: usable from static dtors
        const char *env = std::getenv("IFPROB_REPORT_DIR");
        if (env) {
            s->impl_->decided = true;
            if (std::string_view(env) != "off") {
                s->path_ = std::string(env) + "/run_report.jsonl";
                s->enabled_ = true;
            }
        }
        return s;
    }();
    return *sink;
}

bool
ReportSink::enableDefault(const std::string &dir)
{
    ReportSink &s = global();
    std::lock_guard<std::mutex> lock(s.impl_->mu);
    if (!s.impl_->decided) {
        s.impl_->decided = true;
        s.path_ = dir + "/run_report.jsonl";
        s.enabled_ = true;
    }
    return s.enabled_;
}

} // namespace ifprob::obs

#ifndef IFPROB_OBS_METRICS_H
#define IFPROB_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ifprob::obs {

/**
 * Process-wide metrics for the experiment infrastructure itself: where
 * wall-clock goes (per compiler pass, per VM run), whether the Runner's
 * disk cache hits, how fast the VM retires instructions. The paper's
 * methodological point — measure instructions *per mispredicted branch*,
 * not percent-correct — applies to the harness too: perf claims about
 * the infrastructure need counters behind them.
 *
 * All instruments are registered by name in a global Registry and live
 * for the life of the process; accessors hand out stable references, so
 * hot paths look a name up once and then pay only a relaxed atomic add.
 */

/** Monotonic event count (cache hits, VM runs, bytes written, ...). */
class Counter
{
  public:
    void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Last-write-wins instantaneous value (current cache size, ...). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Fixed-bucket latency histogram. Bucket i counts samples whose value
 * (an integer, typically microseconds) needs i bits: bucket 0 holds
 * v <= 0, bucket i holds 2^(i-1) <= v < 2^i. Power-of-two buckets keep
 * record() allocation-free and branch-cheap while still resolving the
 * microsecond-to-minute range the harness spans.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 48;

    void record(int64_t v);

    int64_t count() const { return count_.load(std::memory_order_relaxed); }
    int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    int64_t max() const { return max_.load(std::memory_order_relaxed); }
    double mean() const;
    int64_t bucketCount(int i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    /** Upper bound of the bucket containing the p-th percentile
     *  (p in [0,100]); 0 when the histogram is empty. */
    int64_t percentileUpperBound(double p) const;

    /** Inclusive upper bound of bucket @p i (2^i - 1; 0 for bucket 0). */
    static int64_t bucketUpperBound(int i);

    void reset();

  private:
    std::atomic<int64_t> counts_[kBuckets] = {};
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> max_{0};
};

/** One named value in a Registry snapshot. */
struct MetricSample
{
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    int64_t value = 0; ///< counter/gauge value, histogram count
    int64_t sum = 0;   ///< histogram only
    int64_t max = 0;   ///< histogram only
    int64_t p50 = 0;   ///< histogram only: median bucket upper bound
    int64_t p99 = 0;   ///< histogram only
};

/**
 * The process-wide instrument directory. Names are dotted paths
 * ("runner.cache_hits", "vm.run_micros"); see docs/observability.md for
 * the full catalogue. Instruments are created on first use and never
 * destroyed, so references remain valid for the process lifetime.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All instruments, sorted by name (histograms summarised). */
    std::vector<MetricSample> snapshot() const;

    /** Human-readable dump of every instrument, one per line. */
    std::string renderText() const;

    /** Zero every instrument (registrations persist). Test hook. */
    void resetAll();

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Shorthands for the common "bump a named counter" pattern. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

} // namespace ifprob::obs

#endif // IFPROB_OBS_METRICS_H

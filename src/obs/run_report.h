#ifndef IFPROB_OBS_RUN_REPORT_H
#define IFPROB_OBS_RUN_REPORT_H

#include <cstdint>
#include <memory>
#include <string>

#include "obs/json.h"

namespace ifprob::obs {

/**
 * Machine-readable run reports: one JSON object per line (JSONL), one
 * line per workload/dataset execution, appended to
 * <dir>/run_report.jsonl. tools/obsreport aggregates these files into a
 * summary table and a BENCH_report.json for tracking the perf
 * trajectory across PRs.
 *
 * The sink is off by default. It turns on when
 *  - the IFPROB_REPORT_DIR environment variable names a directory, or
 *  - a bench binary calls enableRunReportsDefault() (bench_util.h does
 *    this from heading()), which uses "bench/out" unless the env var
 *    overrides it.
 * IFPROB_REPORT_DIR=off forces the sink off either way.
 */

/** Schema tag carried by every run record (bump on breaking change). */
inline constexpr const char *kRunRecordSchema = "ifprob.run.v1";
/** Schema tag for table records (metrics::TextTable rows as JSONL). */
inline constexpr const char *kTableRecordSchema = "ifprob.table.v1";

/** One workload/dataset execution, as the Runner observed it. */
struct RunRecord
{
    std::string workload;
    std::string dataset;
    std::string fingerprint;  ///< compiled image fingerprint, hex
    std::string cache;        ///< "hit" | "miss" | "error" | "off"
    /** Serialization the stats cache hit was read from ("binary" |
     *  "text"); empty when the run was not served from the cache. */
    std::string stats_cache_format;
    int64_t instructions = 0;
    int64_t cond_branches = 0;
    int64_t taken_branches = 0;
    /** Mispredicts under the self-profile bound: sum over sites of
     *  min(taken, not taken) — dataset-intrinsic, predictor-free. */
    int64_t self_mispredicts = 0;
    double instr_per_mispredict = 0.0;
    int64_t compile_micros = 0; ///< 0 when the image was already compiled
    int64_t execute_micros = 0; ///< 0 on a cache hit
    /** Interpreter core that executed the run ("fast" | "switch");
     *  empty when the stats came from the profile cache. */
    std::string engine;
    int64_t decode_micros = 0; ///< pre-decode time; 0 for "switch" / hits
    /** Trace-tier compile time (superblock selection + template
     *  compilation across tiers); 0 unless engine == "trace". */
    int64_t jit_micros = 0;
    /** Trace-plane overhead when the run was recorded through
     *  Runner::traceOf (encode + trace-cache write); 0 otherwise. */
    int64_t trace_micros = 0;
};

/** Serialize one record as a single JSONL line (no trailing newline). */
std::string renderRunRecord(const RunRecord &record);

/** Parse a JSONL line back into a record; throws Error on non-v1 input. */
RunRecord parseRunRecord(std::string_view line);

/**
 * Append-only JSONL sink. The global() instance is what instrumented
 * code writes through; tests construct their own against temp paths.
 */
class ReportSink
{
  public:
    /** Disabled sink. */
    ReportSink();
    /** Sink appending to @p path ("" = disabled). */
    explicit ReportSink(std::string path);
    ~ReportSink();

    bool enabled() const { return enabled_; }
    const std::string &path() const { return path_; }

    void write(const RunRecord &record);
    /** Append an arbitrary pre-rendered JSON object line. */
    void writeLine(const std::string &json);

    static ReportSink &global();

    /**
     * Turn the global sink on with @p dir (creating it) unless
     * IFPROB_REPORT_DIR already decided. Idempotent. Returns whether
     * the sink is enabled afterwards.
     */
    static bool enableDefault(const std::string &dir);

  private:
    bool enabled_ = false;
    std::string path_;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** bench_util.h shorthand: route run reports to <dir>/run_report.jsonl. */
inline bool
enableRunReportsDefault(const std::string &dir)
{
    return ReportSink::enableDefault(dir);
}

} // namespace ifprob::obs

#endif // IFPROB_OBS_RUN_REPORT_H

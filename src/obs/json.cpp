#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strPrintf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        std::fabs(v) < 9.0e15) {
        return strPrintf("%lld",
                         static_cast<long long>(static_cast<int64_t>(v)));
    }
    return strPrintf("%.17g", v);
}

void
JsonObject::key(std::string_view k)
{
    if (!body_.empty())
        body_ += ",";
    body_ += "\"" + jsonEscape(k) + "\":";
}

JsonObject &
JsonObject::field(std::string_view k, std::string_view value)
{
    key(k);
    body_ += "\"" + jsonEscape(value) + "\"";
    return *this;
}

JsonObject &
JsonObject::field(std::string_view k, const char *value)
{
    return field(k, std::string_view(value));
}

JsonObject &
JsonObject::field(std::string_view k, int64_t value)
{
    key(k);
    body_ += strPrintf("%lld", static_cast<long long>(value));
    return *this;
}

JsonObject &
JsonObject::field(std::string_view k, double value)
{
    key(k);
    body_ += jsonNumber(value);
    return *this;
}

JsonObject &
JsonObject::field(std::string_view k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonObject &
JsonObject::fieldRaw(std::string_view k, std::string_view json)
{
    key(k);
    body_ += json;
    return *this;
}

std::string
JsonObject::str() const
{
    return "{" + body_ + "}";
}

namespace {

/** Cursor over the input with the few scanning primitives parsing needs. */
struct Cursor
{
    std::string_view text;
    size_t pos = 0;

    [[noreturn]] void fail(const std::string &what) const
    {
        throw Error(strPrintf("bad JSON at offset %zu: %s", pos,
                              what.c_str()));
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char peek() const { return pos < text.size() ? text[pos] : '\0'; }

    char take()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos++];
    }

    void expect(char c)
    {
        if (take() != c)
            fail(strPrintf("expected '%c'", c));
    }

    bool consumeKeyword(std::string_view kw)
    {
        if (text.substr(pos, kw.size()) != kw)
            return false;
        pos += kw.size();
        return true;
    }
};

std::string
parseString(Cursor &c)
{
    c.expect('"');
    std::string out;
    for (;;) {
        char ch = c.take();
        if (ch == '"')
            return out;
        if (ch != '\\') {
            out.push_back(ch);
            continue;
        }
        char esc = c.take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                char h = c.take();
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code += static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code += static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code += static_cast<unsigned>(h - 'A' + 10);
                else
                    c.fail("bad \\u escape");
            }
            // The sinks only ever emit \u00xx for control bytes; decode
            // BMP code points as UTF-8 for completeness.
            if (code < 0x80) {
                out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
                out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
                out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                out.push_back(
                    static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            c.fail("bad escape");
        }
    }
}

JsonValue
parseNumber(Cursor &c)
{
    size_t start = c.pos;
    if (c.peek() == '-')
        ++c.pos;
    while (c.pos < c.text.size() &&
           (std::isdigit(static_cast<unsigned char>(c.peek())) ||
            c.peek() == '.' || c.peek() == 'e' || c.peek() == 'E' ||
            c.peek() == '+' || c.peek() == '-'))
        ++c.pos;
    if (c.pos == start)
        c.fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.str = std::string(c.text.substr(start, c.pos - start));
    v.num = std::strtod(v.str.c_str(), nullptr);
    return v;
}

/** Skip any JSON value (used for tolerated-but-ignored nesting). */
void
skipValue(Cursor &c)
{
    c.skipSpace();
    char ch = c.peek();
    if (ch == '"') {
        parseString(c);
    } else if (ch == '{' || ch == '[') {
        char open = c.take();
        char close = open == '{' ? '}' : ']';
        int depth = 1;
        while (depth > 0) {
            char x = c.take();
            if (x == '"') {
                --c.pos;
                parseString(c);
            } else if (x == open) {
                ++depth;
            } else if (x == close) {
                --depth;
            }
        }
    } else if (c.consumeKeyword("true") || c.consumeKeyword("false") ||
               c.consumeKeyword("null")) {
    } else {
        parseNumber(c);
    }
}

} // namespace

JsonRecord
parseFlatObject(std::string_view text)
{
    Cursor c{text};
    c.skipSpace();
    c.expect('{');
    JsonRecord record;
    c.skipSpace();
    if (c.peek() == '}') {
        c.take();
        return record;
    }
    for (;;) {
        c.skipSpace();
        std::string k = parseString(c);
        c.skipSpace();
        c.expect(':');
        c.skipSpace();
        char ch = c.peek();
        if (ch == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::kString;
            v.str = parseString(c);
            record[k] = std::move(v);
        } else if (ch == '{' || ch == '[') {
            skipValue(c); // nested: tolerated, dropped
        } else if (c.consumeKeyword("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            v.boolean = true;
            v.num = 1.0;
            record[k] = std::move(v);
        } else if (c.consumeKeyword("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::kBool;
            record[k] = std::move(v);
        } else if (c.consumeKeyword("null")) {
            record[k] = JsonValue{};
        } else {
            record[k] = parseNumber(c);
        }
        c.skipSpace();
        char sep = c.take();
        if (sep == '}')
            return record;
        if (sep != ',')
            c.fail("expected ',' or '}'");
    }
}

} // namespace ifprob::obs

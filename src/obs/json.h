#ifndef IFPROB_OBS_JSON_H
#define IFPROB_OBS_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ifprob::obs {

/**
 * The minimal JSON surface the observability layer needs — flat objects
 * of string/integer/double/bool fields — with zero dependencies. The
 * trace and run-report sinks write through JsonObject; obsreport and the
 * tests read records back through parseFlatObject(). Nested values are
 * out of scope by design: every schema in docs/observability.md is flat.
 */

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/** Render a double the way JSON wants it (finite; no NaN/Inf). */
std::string jsonNumber(double v);

/** Incremental builder for one flat JSON object, keys in call order. */
class JsonObject
{
  public:
    JsonObject &field(std::string_view key, std::string_view value);
    JsonObject &field(std::string_view key, const char *value);
    JsonObject &field(std::string_view key, int64_t value);
    JsonObject &field(std::string_view key, double value);
    JsonObject &field(std::string_view key, bool value);
    /** Splice an already-rendered JSON value (object, array, ...). */
    JsonObject &fieldRaw(std::string_view key, std::string_view json);

    bool empty() const { return body_.empty(); }
    /** The complete "{...}" text. */
    std::string str() const;

  private:
    void key(std::string_view k);
    std::string body_;
};

/** One parsed scalar: the concrete type plus both views of the value. */
struct JsonValue
{
    enum class Kind { kString, kNumber, kBool, kNull } kind = Kind::kNull;
    std::string str;    ///< string value (or raw text for numbers)
    double num = 0.0;   ///< numeric value (0 for strings/null)
    bool boolean = false;

    int64_t asInt() const { return static_cast<int64_t>(num); }
};

/** A parsed flat object, keyed by field name. */
using JsonRecord = std::map<std::string, JsonValue>;

/**
 * Parse one flat JSON object ("{"k":"v","n":12}"). Nested objects and
 * arrays are tolerated on input but skipped (the key is dropped).
 * Throws ifprob::Error on malformed input.
 */
JsonRecord parseFlatObject(std::string_view text);

} // namespace ifprob::obs

#endif // IFPROB_OBS_JSON_H

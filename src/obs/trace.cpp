#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "support/str.h"

namespace ifprob::obs {

int64_t
nowMicros()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point t0 = clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - t0)
        .count();
}

struct TraceSession::Impl
{
    mutable std::mutex mu;
    std::vector<std::string> events; ///< each a rendered JSON object
};

TraceSession::TraceSession() : impl_(std::make_unique<Impl>()) {}

TraceSession::TraceSession(std::string path)
    : enabled_(!path.empty()), path_(std::move(path)),
      impl_(std::make_unique<Impl>())
{
}

TraceSession::~TraceSession()
{
    flush();
}

void
TraceSession::emitComplete(std::string_view name, std::string_view category,
                           int64_t ts_micros, int64_t dur_micros,
                           const JsonObject &args, int64_t tid)
{
    if (!enabled_)
        return;
    JsonObject ev;
    ev.field("name", name)
        .field("cat", category)
        .field("ph", "X")
        .field("ts", ts_micros)
        .field("dur", dur_micros)
        .field("pid", int64_t{1})
        .field("tid", tid);
    if (!args.empty())
        ev.fieldRaw("args", args.str());
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->events.push_back(ev.str());
}

void
TraceSession::emitInstant(std::string_view name, std::string_view category,
                          int64_t ts_micros, const JsonObject &args)
{
    if (!enabled_)
        return;
    JsonObject ev;
    ev.field("name", name)
        .field("cat", category)
        .field("ph", "i")
        .field("ts", ts_micros)
        .field("s", "g") // global scope instant
        .field("pid", int64_t{1})
        .field("tid", int64_t{1});
    if (!args.empty())
        ev.fieldRaw("args", args.str());
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->events.push_back(ev.str());
}

size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->events.size();
}

void
TraceSession::writeTo(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"traceEvents\":[";
    for (size_t i = 0; i < impl_->events.size(); ++i) {
        if (i)
            os << ",";
        os << "\n" << impl_->events[i];
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceSession::flush()
{
    if (!enabled_ || path_.empty())
        return;
    std::ofstream out(path_, std::ios::trunc);
    if (out)
        writeTo(out);
}

TraceSession &
TraceSession::global()
{
    static TraceSession session = [] {
        const char *env = std::getenv("IFPROB_TRACE");
        return TraceSession(env ? env : "");
    }();
    return session;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       TraceSession *session)
{
    if (!session || !session->enabled())
        return; // the whole span is a no-op
    session_ = session;
    name_ = name;
    category_ = category;
    start_ = nowMicros();
}

ScopedSpan::~ScopedSpan()
{
    if (!session_)
        return;
    int64_t end = nowMicros();
    session_->emitComplete(name_, category_, start_, end - start_, args_,
                           tid_);
}

void
ScopedSpan::tid(int64_t tid)
{
    if (session_)
        tid_ = tid;
}

void
ScopedSpan::arg(std::string_view key, int64_t value)
{
    if (session_)
        args_.field(key, value);
}

void
ScopedSpan::arg(std::string_view key, std::string_view value)
{
    if (session_)
        args_.field(key, value);
}

void
ScopedSpan::arg(std::string_view key, double value)
{
    if (session_)
        args_.field(key, value);
}

} // namespace ifprob::obs

#ifndef IFPROB_OBS_TRACE_H
#define IFPROB_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/json.h"

namespace ifprob::obs {

/**
 * Chrome trace_event-format span recording, viewable in chrome://tracing
 * or https://ui.perfetto.dev. Tracing is off unless the IFPROB_TRACE
 * environment variable names an output path, so the instrumented hot
 * paths pay one well-predicted branch when disabled.
 *
 *   IFPROB_TRACE=trace.json ./examples/quickstart
 *
 * Spans buffer in memory and the complete JSON document is written when
 * the process exits (or on an explicit flush()). The emitted file is
 * the object form: {"traceEvents":[...],"displayTimeUnit":"ms"}.
 */

/** Monotonic microseconds since process start. */
int64_t nowMicros();

/**
 * One trace sink. The process-global instance (TraceSession::global())
 * is configured from IFPROB_TRACE; tests construct their own sessions
 * with an explicit path.
 */
class TraceSession
{
  public:
    /** Disabled session. */
    TraceSession();
    /** Session writing to @p path at flush time ("" = disabled). */
    explicit TraceSession(std::string path);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    bool enabled() const { return enabled_; }

    /** Record one complete ("ph":"X") event. @p args may be empty.
     *  @p tid selects the trace lane (1 = main thread; the exec::Pool
     *  workers use worker index + 2 so parallel jobs render as
     *  side-by-side lanes). */
    void emitComplete(std::string_view name, std::string_view category,
                      int64_t ts_micros, int64_t dur_micros,
                      const JsonObject &args, int64_t tid = 1);

    /** Record one instant ("ph":"i") event. */
    void emitInstant(std::string_view name, std::string_view category,
                     int64_t ts_micros, const JsonObject &args);

    /** Number of buffered events (flushing does not clear them). */
    size_t eventCount() const;

    /** Serialize the full trace document to @p os. */
    void writeTo(std::ostream &os) const;

    /** Write the trace document to the configured path (no-op when
     *  disabled). Called automatically from the destructor. */
    void flush();

    /** The process-wide session, configured from IFPROB_TRACE. Flushed
     *  by its static destructor at normal process exit. */
    static TraceSession &global();

  private:
    bool enabled_ = false;
    std::string path_;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * RAII span: measures construction-to-destruction and emits one complete
 * event into a session. When the session is disabled the constructor
 * reduces to a bool check, so scattering spans through the compiler and
 * harness costs nothing in normal runs.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string_view name,
                        std::string_view category = "ifprob",
                        TraceSession *session = &TraceSession::global());
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    bool active() const { return session_ != nullptr; }

    /** Attach an argument shown in the trace viewer's detail pane. */
    void arg(std::string_view key, int64_t value);
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, double value);

    /** Route this span to trace lane @p tid (default 1, the main
     *  thread's lane). */
    void tid(int64_t tid);

  private:
    TraceSession *session_ = nullptr; ///< null when inactive
    std::string name_;
    std::string category_;
    int64_t start_ = 0;
    int64_t tid_ = 1;
    JsonObject args_;
};

} // namespace ifprob::obs

#endif // IFPROB_OBS_TRACE_H

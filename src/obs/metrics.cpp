#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "support/str.h"

namespace ifprob::obs {

void
Histogram::record(int64_t v)
{
    int bucket = 0;
    if (v > 0) {
        bucket = std::bit_width(static_cast<uint64_t>(v));
        if (bucket >= kBuckets)
            bucket = kBuckets - 1;
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
}

double
Histogram::mean() const
{
    int64_t n = count();
    return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

int64_t
Histogram::bucketUpperBound(int i)
{
    if (i <= 0)
        return 0;
    return (int64_t{1} << i) - 1;
}

int64_t
Histogram::percentileUpperBound(double p) const
{
    int64_t n = count();
    if (n == 0)
        return 0;
    double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                  static_cast<double>(n);
    int64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += bucketCount(i);
        if (static_cast<double>(seen) >= rank && seen > 0)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

struct Registry::Impl
{
    mutable std::mutex mu;
    // node-based maps: references stay valid as the maps grow.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Registry::Impl &
Registry::impl() const
{
    // Leaked on purpose: instruments may be touched from static
    // destructors (e.g. the trace session flushing at exit).
    static Impl *impl = new Impl;
    return *impl;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    auto &slot = i.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricSample>
Registry::snapshot() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    std::vector<MetricSample> out;
    for (const auto &[name, c] : i.counters) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::kCounter;
        s.value = c->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, g] : i.gauges) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::kGauge;
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, h] : i.histograms) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::Kind::kHistogram;
        s.value = h->count();
        s.sum = h->sum();
        s.max = h->max();
        s.p50 = h->percentileUpperBound(50.0);
        s.p99 = h->percentileUpperBound(99.0);
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
Registry::renderText() const
{
    std::string out;
    for (const auto &s : snapshot()) {
        switch (s.kind) {
          case MetricSample::Kind::kCounter:
            out += strPrintf("counter   %-40s %s\n", s.name.c_str(),
                             withCommas(s.value).c_str());
            break;
          case MetricSample::Kind::kGauge:
            out += strPrintf("gauge     %-40s %s\n", s.name.c_str(),
                             withCommas(s.value).c_str());
            break;
          case MetricSample::Kind::kHistogram:
            out += strPrintf("histogram %-40s n=%s sum=%s max=%s "
                             "p50<=%s p99<=%s\n",
                             s.name.c_str(), withCommas(s.value).c_str(),
                             withCommas(s.sum).c_str(),
                             withCommas(s.max).c_str(),
                             withCommas(s.p50).c_str(),
                             withCommas(s.p99).c_str());
            break;
        }
    }
    return out;
}

void
Registry::resetAll()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mu);
    for (auto &[name, c] : i.counters)
        c->reset();
    for (auto &[name, g] : i.gauges)
        g->reset();
    for (auto &[name, h] : i.histograms)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace ifprob::obs

#include "exec/pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::exec {

namespace detail {

struct JobState
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

} // namespace detail

bool
Job::done() const
{
    if (!state_)
        return true;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

void
Job::wait() const
{
    if (!state_)
        return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
}

void
Job::get() const
{
    wait();
    if (state_ && state_->error)
        std::rethrow_exception(state_->error);
}

namespace {

struct Task
{
    std::function<void()> fn;
    std::string name; ///< trace span name; empty = "exec.job"
    std::shared_ptr<detail::JobState> state;
    int64_t submit_micros = 0;
};

void
finishJob(detail::JobState &state, std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(state.mu);
    state.error = std::move(error);
    state.done = true;
    state.cv.notify_all();
}

/** Instrument references resolved once per pool, off the hot path. */
struct PoolMetrics
{
    obs::Gauge &queue_depth = obs::gauge("exec.queue_depth");
    obs::Counter &submitted = obs::counter("exec.jobs_submitted");
    obs::Counter &completed = obs::counter("exec.jobs_completed");
    obs::Counter &steals = obs::counter("exec.steals");
    obs::Counter &busy = obs::counter("exec.busy_micros");
    obs::Histogram &wait_hist = obs::histogram("exec.job_wait_micros");
    obs::Histogram &run_hist = obs::histogram("exec.job_run_micros");
};

} // namespace

struct Pool::Impl
{
    struct Worker
    {
        std::mutex mu;
        std::deque<Task> queue;
        obs::Counter *jobs = nullptr;
        obs::Counter *busy_micros = nullptr;
        std::thread thread;
    };

    PoolMetrics metrics;
    std::vector<std::unique_ptr<Worker>> workers;
    std::mutex wait_mu;           ///< guards the two condition variables
    std::condition_variable work_cv;  ///< idle workers sleep here
    std::condition_variable drain_cv; ///< drain() sleeps here
    std::atomic<size_t> queued{0};    ///< tasks sitting in a deque
    std::atomic<size_t> inflight{0};  ///< queued + currently running
    std::atomic<size_t> next{0};      ///< round-robin submit cursor
    std::atomic<bool> stop{false};

    void workerLoop(int index);
    void runTask(Worker &me, int index, Task &&task);
};

void
Pool::Impl::runTask(Worker &me, int index, Task &&task)
{
    const int64_t start = obs::nowMicros();
    metrics.wait_hist.record(start - task.submit_micros);
    std::exception_ptr error;
    {
        obs::ScopedSpan span(task.name.empty() ? "exec.job"
                                               : task.name.c_str(),
                             "exec");
        if (span.active()) {
            // One trace lane per worker (tid 1 is the main thread), so
            // Perfetto shows the matrix fanning out across workers.
            span.tid(index + 2);
            span.arg("worker", int64_t{index});
        }
        try {
            task.fn();
        } catch (...) {
            error = std::current_exception();
        }
    }
    const int64_t micros = obs::nowMicros() - start;
    metrics.busy.add(micros);
    metrics.run_hist.record(micros);
    me.busy_micros->add(micros);
    me.jobs->add(1);
    metrics.completed.add(1);
    finishJob(*task.state, std::move(error));
    if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wait_mu);
        drain_cv.notify_all();
    }
}

void
Pool::Impl::workerLoop(int index)
{
    Worker &me = *workers[index];
    const size_t n = workers.size();
    for (;;) {
        Task task;
        bool have = false;
        {
            std::lock_guard<std::mutex> lock(me.mu);
            if (!me.queue.empty()) {
                task = std::move(me.queue.front());
                me.queue.pop_front();
                have = true;
            }
        }
        // Steal from the back of a sibling's deque (oldest work first).
        for (size_t k = 1; !have && k < n; ++k) {
            Worker &victim = *workers[(index + k) % n];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.queue.empty()) {
                task = std::move(victim.queue.back());
                victim.queue.pop_back();
                have = true;
                metrics.steals.add(1);
            }
        }
        if (!have) {
            std::unique_lock<std::mutex> lock(wait_mu);
            if (stop.load(std::memory_order_acquire) &&
                queued.load(std::memory_order_acquire) == 0)
                return;
            work_cv.wait(lock, [&] {
                return queued.load(std::memory_order_acquire) > 0 ||
                       stop.load(std::memory_order_acquire);
            });
            continue;
        }
        queued.fetch_sub(1, std::memory_order_acq_rel);
        metrics.queue_depth.set(
            static_cast<int64_t>(queued.load(std::memory_order_relaxed)));
        runTask(me, index, std::move(task));
    }
}

Pool::Pool(int jobs) : jobs_(jobs < 1 ? 1 : jobs)
{
    if (jobs_ == 1)
        return; // inline mode: no threads, no queues
    impl_ = std::make_unique<Impl>();
    impl_->workers.reserve(static_cast<size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i) {
        auto worker = std::make_unique<Impl::Worker>();
        worker->jobs = &obs::counter(strPrintf("exec.worker.%d.jobs", i));
        worker->busy_micros =
            &obs::counter(strPrintf("exec.worker.%d.busy_micros", i));
        impl_->workers.push_back(std::move(worker));
    }
    for (int i = 0; i < jobs_; ++i)
        impl_->workers[static_cast<size_t>(i)]->thread =
            std::thread([this, i] { impl_->workerLoop(i); });
}

Pool::~Pool()
{
    if (!impl_)
        return;
    drain();
    {
        std::lock_guard<std::mutex> lock(impl_->wait_mu);
        impl_->stop.store(true, std::memory_order_release);
        impl_->work_cv.notify_all();
    }
    for (auto &worker : impl_->workers)
        worker->thread.join();
}

int
Pool::workers() const
{
    return impl_ ? static_cast<int>(impl_->workers.size()) : 0;
}

Job
Pool::submit(std::function<void()> fn)
{
    auto state = std::make_shared<detail::JobState>();
    if (!impl_) {
        // Inline mode: run now, in submission order, on this thread —
        // bit-for-bit the historical serial harness.
        PoolMetrics metrics;
        metrics.submitted.add(1);
        const int64_t start = obs::nowMicros();
        std::exception_ptr error;
        try {
            fn();
        } catch (...) {
            error = std::current_exception();
        }
        const int64_t micros = obs::nowMicros() - start;
        metrics.busy.add(micros);
        metrics.run_hist.record(micros);
        metrics.completed.add(1);
        finishJob(*state, std::move(error));
        return Job(std::move(state));
    }

    Task task;
    task.fn = std::move(fn);
    task.state = state;
    task.submit_micros = obs::nowMicros();
    impl_->metrics.submitted.add(1);
    impl_->inflight.fetch_add(1, std::memory_order_acq_rel);
    const size_t index = impl_->next.fetch_add(1, std::memory_order_relaxed) %
                         impl_->workers.size();
    {
        Impl::Worker &worker = *impl_->workers[index];
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.queue.push_back(std::move(task));
    }
    impl_->metrics.queue_depth.set(static_cast<int64_t>(
        impl_->queued.fetch_add(1, std::memory_order_acq_rel) + 1));
    {
        std::lock_guard<std::mutex> lock(impl_->wait_mu);
        impl_->work_cv.notify_one();
    }
    return Job(std::move(state));
}

void
Pool::drain()
{
    if (!impl_)
        return;
    std::unique_lock<std::mutex> lock(impl_->wait_mu);
    impl_->drain_cv.wait(lock, [&] {
        return impl_->inflight.load(std::memory_order_acquire) == 0;
    });
}

void
parallelFor(Pool &pool, size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (pool.jobs() <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::vector<Job> jobs;
    jobs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        jobs.push_back(pool.submit([&fn, i] { fn(i); }));
    for (const Job &job : jobs)
        job.wait();
    for (const Job &job : jobs)
        job.get(); // lowest-index failure wins, deterministically
}

int
defaultJobs()
{
    const char *env = std::getenv("IFPROB_JOBS");
    if (env) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {
std::atomic<int> planned_jobs_override{0};
} // namespace

void
setPlannedJobs(int jobs)
{
    if (jobs >= 1)
        planned_jobs_override.store(jobs, std::memory_order_relaxed);
}

int
plannedJobs()
{
    int v = planned_jobs_override.load(std::memory_order_relaxed);
    return v >= 1 ? v : defaultJobs();
}

Pool &
globalPool()
{
    // Leaked on purpose: jobs may still complete while static
    // destructors (trace flush, report sink) run.
    static Pool *pool = new Pool(plannedJobs());
    return *pool;
}

} // namespace ifprob::exec

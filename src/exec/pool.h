#ifndef IFPROB_EXEC_POOL_H
#define IFPROB_EXEC_POOL_H

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>

namespace ifprob::exec {

/**
 * Work-stealing thread pool for the experiment matrix. The paper's
 * methodology is N x N — every dataset's profile predicts every other
 * dataset — so the harness's unit of work is one (workload, dataset)
 * cell, and the sweep cost, not the predictor math, dominates wall
 * clock. exec::Pool turns that matrix into jobs.
 *
 * Parallelism is chosen once per process:
 *   - `--jobs N` in a bench binary (bench::initJobs -> setPlannedJobs),
 *   - else the IFPROB_JOBS environment variable,
 *   - else std::thread::hardware_concurrency().
 *
 * jobs == 1 is special: submit() runs the task inline in the calling
 * thread before returning, so the execution order — and therefore every
 * observable side effect, cache file and table byte — is identical to
 * the historical serial harness. jobs >= 2 spawns that many workers,
 * each with its own deque; idle workers steal from the back of their
 * siblings' queues.
 *
 * Observability (see docs/parallelism.md):
 *   exec.queue_depth (gauge), exec.jobs_submitted / exec.jobs_completed
 *   / exec.steals / exec.busy_micros (counters),
 *   exec.worker.<i>.jobs / exec.worker.<i>.busy_micros (counters),
 *   exec.job_wait_micros / exec.job_run_micros (histograms), and one
 *   "exec.job" Chrome-trace span per job on trace lane tid = worker+2.
 */

namespace detail {
struct JobState;
}

/**
 * Handle to one submitted task. Copyable (shared state); a
 * default-constructed Job is empty. Exceptions thrown by the task are
 * captured and rethrown from get().
 */
class Job
{
  public:
    Job() = default;

    bool valid() const { return state_ != nullptr; }
    /** True once the task finished (normally or by exception). */
    bool done() const;
    /** Block until the task finishes. Does not rethrow. */
    void wait() const;
    /** wait(), then rethrow the task's exception if it threw. */
    void get() const;

  private:
    friend class Pool;
    explicit Job(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::JobState> state_;
};

class Pool
{
  public:
    /** @p jobs < 1 is clamped to 1. jobs == 1 means inline execution. */
    explicit Pool(int jobs);
    /** Destructor drains every submitted job, then joins the workers. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Configured parallelism (>= 1). */
    int jobs() const { return jobs_; }
    /** Worker threads actually running (0 in inline mode). */
    int workers() const;

    /** Enqueue @p fn; inline mode runs it before returning. */
    Job submit(std::function<void()> fn);

    /** Block until every job submitted so far has finished. */
    void drain();

  private:
    struct Impl;
    int jobs_ = 1;
    std::unique_ptr<Impl> impl_; ///< null in inline mode
};

/**
 * Run fn(0) ... fn(n-1), blocking until all complete. Inline pools (or
 * n <= 1) execute serially in index order in the calling thread;
 * otherwise each index is one pool job. If any call throws, the
 * exception of the lowest-index failure is rethrown after every
 * iteration has finished (no iteration is skipped), so error reporting
 * is deterministic regardless of schedule.
 */
void parallelFor(Pool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

/** IFPROB_JOBS env var if set (>=1), else hardware concurrency. */
int defaultJobs();

/**
 * Override the parallelism the global pool will use (bench --jobs).
 * Must be called before the first globalPool() use; later calls only
 * take effect if the pool has not been created yet.
 */
void setPlannedJobs(int jobs);

/** The parallelism globalPool() has or would have, without creating it. */
int plannedJobs();

/**
 * Process-wide pool shared by the experiment helpers, created on first
 * use with plannedJobs() parallelism and never destroyed.
 */
Pool &globalPool();

} // namespace ifprob::exec

#endif // IFPROB_EXEC_POOL_H

#include "exec/graph.h"

#include <condition_variable>
#include <exception>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace ifprob::exec {

Graph::NodeId
Graph::add(std::string name, std::function<void()> fn,
           std::vector<NodeId> deps)
{
    for (NodeId dep : deps) {
        if (dep >= nodes_.size())
            throw Error("graph node '" + name + "' depends on #" +
                        std::to_string(dep) + ", which does not exist yet");
    }
    nodes_.push_back(Node{std::move(name), std::move(fn), std::move(deps)});
    return nodes_.size() - 1;
}

namespace {

/** Shared bookkeeping for one Graph::run(). */
struct RunState
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<int> pending;        ///< unfinished deps per node
    std::vector<std::vector<size_t>> successors;
    std::vector<char> skip;          ///< dependency failed: never run
    size_t remaining = 0;            ///< nodes not yet finished/skipped
    size_t skipped = 0;
    std::exception_ptr error;        ///< failure of lowest-numbered node
    size_t error_node = SIZE_MAX;
};

} // namespace

void
Graph::run(Pool &pool)
{
    if (ran_)
        throw Error("exec::Graph::run() called twice");
    ran_ = true;
    skipped_ = 0;
    if (nodes_.empty())
        return;
    obs::counter("exec.graph_nodes").add(static_cast<int64_t>(nodes_.size()));

    auto state = std::make_shared<RunState>();
    state->pending.resize(nodes_.size(), 0);
    state->successors.resize(nodes_.size());
    state->skip.resize(nodes_.size(), 0);
    state->remaining = nodes_.size();
    for (size_t id = 0; id < nodes_.size(); ++id) {
        state->pending[id] = static_cast<int>(nodes_[id].deps.size());
        for (NodeId dep : nodes_[id].deps)
            state->successors[dep].push_back(id);
    }

    // finished(id, ok) marks one node complete and returns the ids that
    // just became ready to schedule (in id order, for determinism on an
    // inline pool). Skipped dependents are retired here recursively.
    std::function<std::vector<size_t>(size_t, bool)> finished =
        [&](size_t id, bool ok) {
            std::vector<size_t> ready;
            std::lock_guard<std::mutex> lock(state->mu);
            std::vector<size_t> retire{id};
            bool first_ok = ok;
            while (!retire.empty()) {
                size_t cur = retire.back();
                retire.pop_back();
                bool cur_ok = (cur == id) ? first_ok : false;
                --state->remaining;
                for (size_t succ : state->successors[cur]) {
                    if (!cur_ok)
                        state->skip[succ] = 1;
                    if (--state->pending[succ] > 0)
                        continue;
                    if (state->skip[succ]) {
                        ++state->skipped;
                        retire.push_back(succ);
                    } else {
                        ready.push_back(succ);
                    }
                }
            }
            if (state->remaining == 0)
                state->cv.notify_all();
            return ready;
        };

    std::function<void(size_t)> schedule = [&](size_t id) {
        pool.submit([&, id] {
            std::exception_ptr error;
            {
                obs::ScopedSpan span(nodes_[id].name, "exec");
                if (span.active())
                    span.arg("node", static_cast<int64_t>(id));
                try {
                    nodes_[id].fn();
                } catch (...) {
                    error = std::current_exception();
                }
            }
            if (error) {
                std::lock_guard<std::mutex> lock(state->mu);
                if (id < state->error_node) {
                    state->error_node = id;
                    state->error = error;
                }
            }
            for (size_t next : finished(id, error == nullptr))
                schedule(next);
        });
    };

    std::vector<size_t> roots;
    for (size_t id = 0; id < nodes_.size(); ++id) {
        if (state->pending[id] == 0)
            roots.push_back(id);
    }
    for (size_t id : roots)
        schedule(id);

    {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait(lock, [&] { return state->remaining == 0; });
        skipped_ = state->skipped;
    }
    if (skipped_ > 0)
        obs::counter("exec.graph_skipped")
            .add(static_cast<int64_t>(skipped_));
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace ifprob::exec

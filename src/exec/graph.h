#ifndef IFPROB_EXEC_GRAPH_H
#define IFPROB_EXEC_GRAPH_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/pool.h"

namespace ifprob::exec {

/**
 * Dependency-aware job graph. Nodes are added with explicit
 * dependencies on previously-added nodes (so the graph is acyclic by
 * construction), then run() executes every node on a Pool, releasing a
 * node as soon as its last dependency finishes — no global barrier
 * between "stages", so cheap downstream nodes of one workload overlap
 * expensive upstream nodes of another.
 *
 * The experiment matrix is the motivating shape: one node per
 * (workload, dataset) run, then per-row nodes that need every dataset
 * of their workload (the paper's cross-dataset predictors) depending
 * on exactly those runs.
 *
 * Failure semantics: a throwing node marks its transitive dependents
 * skipped (they never run); independent subgraphs still complete.
 * run() then rethrows the failure of the lowest-numbered failing node,
 * so error reporting is deterministic regardless of schedule. On an
 * inline pool (jobs == 1) nodes execute depth-first from the roots in
 * id order — a deterministic topological order, so serial runs are
 * exactly reproducible.
 */
class Graph
{
  public:
    using NodeId = size_t;

    /**
     * Add a node. @p name labels the node's trace span and error text;
     * @p deps must all be ids returned by earlier add() calls (throws
     * ifprob::Error otherwise).
     */
    NodeId add(std::string name, std::function<void()> fn,
               std::vector<NodeId> deps = {});

    size_t size() const { return nodes_.size(); }

    /**
     * Execute the whole graph on @p pool and block until every node has
     * finished or been skipped. Rethrows the lowest-numbered node
     * failure, if any. A Graph is single-shot: run() may only be called
     * once.
     */
    void run(Pool &pool);

    /** Nodes skipped by the last run() because a dependency failed. */
    size_t skipped() const { return skipped_; }

  private:
    struct Node
    {
        std::string name;
        std::function<void()> fn;
        std::vector<NodeId> deps;
    };

    std::vector<Node> nodes_;
    size_t skipped_ = 0;
    bool ran_ = false;
};

} // namespace ifprob::exec

#endif // IFPROB_EXEC_GRAPH_H

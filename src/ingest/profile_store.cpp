#include "ingest/profile_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "ingest/segment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/atomic_file.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::ingest {

namespace {

/** How many segment-load failure messages stats() retains. */
constexpr size_t kMaxFailureMessages = 8;

std::string
segmentFileName(const ProfileStore::ImageKey &key)
{
    return strPrintf("%s.%016llx.seg",
                     sanitizeFileName(key.first).c_str(),
                     static_cast<unsigned long long>(key.second));
}

} // namespace

std::shared_ptr<ProfileStore::Image>
ProfileStore::imageFor(const ImageKey &key, uint32_t num_sites)
{
    std::shared_ptr<Image> image = images_.slot(key);
    std::call_once(image->once, [&] {
        image->num_sites = num_sites;
        image->num_shards =
            num_sites == 0 ? 0 : std::min(kSiteShards, num_sites);
        image->stride =
            num_sites == 0
                ? 1
                : (num_sites + image->num_shards - 1) / image->num_shards;
        if (image->num_shards > 0)
            image->shards = std::make_unique<Shard[]>(image->num_shards);
        image->ready.store(true, std::memory_order_release);
    });
    if (!image->ready.load(std::memory_order_acquire) ||
        image->num_sites != num_sites) {
        throw Error(strPrintf(
            "ProfileStore: image '%s' has %u branch sites, batch says %u",
            key.first.c_str(), image->num_sites, num_sites));
    }
    return image;
}

std::shared_ptr<ProfileStore::Image>
ProfileStore::requireImage(const ImageKey &key) const
{
    std::shared_ptr<Image> image = images_.peek(key);
    if (!image || !image->ready.load(std::memory_order_acquire)) {
        throw Error(strPrintf(
            "ProfileStore: unknown image '%s' (fingerprint %016llx)",
            key.first.c_str(),
            static_cast<unsigned long long>(key.second)));
    }
    return image;
}

void
ProfileStore::fold(const RunReport &report)
{
    const int64_t t0 = obs::nowMicros();
    std::shared_ptr<Image> image;
    try {
        for (const SiteDelta &d : report.deltas) {
            if (d.site >= report.num_sites) {
                throw Error(strPrintf(
                    "ProfileStore: batch for '%s' names site %u of %u",
                    report.program.c_str(), d.site, report.num_sites));
            }
            if (d.executed < 0 || d.taken < 0 || d.taken > d.executed) {
                throw Error(strPrintf(
                    "ProfileStore: batch for '%s' site %u has "
                    "inconsistent counts (executed %lld, taken %lld)",
                    report.program.c_str(), d.site,
                    static_cast<long long>(d.executed),
                    static_cast<long long>(d.taken)));
            }
        }
        image = imageFor({report.program, report.fingerprint},
                         report.num_sites);
    } catch (const Error &) {
        rejected_batches_.fetch_add(1, std::memory_order_relaxed);
        obs::counter("ingest.rejected_batches").add();
        throw;
    }

    foldCounts(*image, report.source, report.deltas, 1);
    batches_.fetch_add(1, std::memory_order_relaxed);
    events_.fetch_add(static_cast<int64_t>(report.deltas.size()),
                      std::memory_order_relaxed);
    obs::counter("ingest.batches").add();
    obs::counter("ingest.events")
        .add(static_cast<int64_t>(report.deltas.size()));
    obs::histogram("ingest.fold_micros").record(obs::nowMicros() - t0);
}

void
ProfileStore::foldCounts(Image &image, const std::string &source,
                         const std::vector<SiteDelta> &deltas,
                         int64_t batches_delta)
{
    // One pass to bucket by shard, then one lock acquisition per
    // touched shard — a batch's cost is its delta count, not the
    // image's shard count.
    std::vector<std::vector<const SiteDelta *>> buckets(image.num_shards);
    for (const SiteDelta &d : deltas)
        buckets[image.shardOf(d.site)].push_back(&d);
    for (uint32_t s = 0; s < image.num_shards; ++s) {
        if (buckets[s].empty())
            continue;
        Shard &shard = image.shards[s];
        const uint32_t first = image.firstSite(s);
        std::lock_guard<std::mutex> lock(shard.mu);
        std::vector<vm::BranchCounts> &slice = shard.sources[source];
        if (slice.empty())
            slice.resize(image.sitesIn(s));
        for (const SiteDelta *d : buckets[s]) {
            vm::BranchCounts &c = slice[d->site - first];
            c.executed += d->executed;
            c.taken += d->taken;
        }
    }
    {
        std::lock_guard<std::mutex> lock(image.meta_mu);
        image.source_batches[source] += batches_delta;
    }
}

std::map<std::string, std::vector<vm::BranchCounts>>
ProfileStore::assemble(const Image &image) const
{
    std::map<std::string, std::vector<vm::BranchCounts>> dense;
    for (uint32_t s = 0; s < image.num_shards; ++s) {
        const Shard &shard = image.shards[s];
        const uint32_t first = image.firstSite(s);
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[name, slice] : shard.sources) {
            std::vector<vm::BranchCounts> &d = dense[name];
            if (d.empty())
                d.resize(image.num_sites);
            std::copy(slice.begin(), slice.end(), d.begin() + first);
        }
    }
    return dense;
}

profile::ProfileDb
ProfileStore::snapshot(const ImageKey &key, profile::MergeMode mode) const
{
    const int64_t t0 = obs::nowMicros();
    const std::shared_ptr<Image> image = requireImage(key);
    const auto dense = assemble(*image);

    // This kernel mirrors ProfileDb::merge operation for operation —
    // same source order (lexicographic, the std::map order), same site
    // order, same double arithmetic — so the result is bit-identical
    // to the reference merge of the per-source databases. The int64
    // accumulators convert to double exactly below 2^53, and summing
    // the scaled total here in site order reproduces totalExecuted().
    const size_t n = image->num_sites;
    std::vector<profile::BranchWeight> out(n);
    for (const auto &[name, counts] : dense) {
        switch (mode) {
          case profile::MergeMode::kUnscaled:
            for (size_t i = 0; i < n; ++i) {
                out[i].executed +=
                    static_cast<double>(counts[i].executed);
                out[i].taken += static_cast<double>(counts[i].taken);
            }
            break;
          case profile::MergeMode::kScaled: {
            double total = 0.0;
            for (size_t i = 0; i < n; ++i)
                total += static_cast<double>(counts[i].executed);
            if (total <= 0.0)
                break; // an empty source contributes nothing
            for (size_t i = 0; i < n; ++i) {
                out[i].executed +=
                    static_cast<double>(counts[i].executed) / total;
                out[i].taken +=
                    static_cast<double>(counts[i].taken) / total;
            }
            break;
          }
          case profile::MergeMode::kPolling:
            for (size_t i = 0; i < n; ++i) {
                const double executed =
                    static_cast<double>(counts[i].executed);
                const double taken =
                    static_cast<double>(counts[i].taken);
                if (executed <= 0.0)
                    continue;
                out[i].executed += 1.0;
                if (taken * 2.0 > executed)
                    out[i].taken += 1.0;
            }
            break;
        }
    }
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("ingest.snapshots").add();
    obs::histogram("ingest.snapshot_micros")
        .record(obs::nowMicros() - t0);
    return profile::ProfileDb(key.first, key.second, std::move(out));
}

profile::ProfileDb
ProfileStore::sourceDb(const ImageKey &key,
                       const std::string &source) const
{
    const std::shared_ptr<Image> image = requireImage(key);
    std::vector<profile::BranchWeight> weights(image->num_sites);
    for (uint32_t s = 0; s < image->num_shards; ++s) {
        const Shard &shard = image->shards[s];
        const uint32_t first = image->firstSite(s);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.sources.find(source);
        if (it == shard.sources.end())
            continue;
        for (size_t i = 0; i < it->second.size(); ++i) {
            weights[first + i].executed =
                static_cast<double>(it->second[i].executed);
            weights[first + i].taken =
                static_cast<double>(it->second[i].taken);
        }
    }
    return profile::ProfileDb(key.first, key.second, std::move(weights));
}

std::vector<std::pair<std::string, int64_t>>
ProfileStore::sources(const ImageKey &key) const
{
    const std::shared_ptr<Image> image = requireImage(key);
    std::lock_guard<std::mutex> lock(image->meta_mu);
    return {image->source_batches.begin(), image->source_batches.end()};
}

std::vector<ProfileStore::ImageKey>
ProfileStore::images() const
{
    return images_.keys();
}

uint32_t
ProfileStore::numSites(const ImageKey &key) const
{
    return requireImage(key)->num_sites;
}

size_t
ProfileStore::saveSegments(const std::string &dir) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    size_t written = 0;
    for (const ImageKey &key : images_.keys()) {
        std::shared_ptr<Image> image = images_.peek(key);
        if (!image || !image->ready.load(std::memory_order_acquire))
            continue;
        Segment seg;
        seg.program = key.first;
        seg.fingerprint = key.second;
        seg.num_sites = image->num_sites;
        std::map<std::string, int64_t> batches;
        {
            std::lock_guard<std::mutex> lock(image->meta_mu);
            batches = image->source_batches;
        }
        for (auto &[name, counts] : assemble(*image)) {
            SegmentSource src;
            src.name = name;
            auto it = batches.find(name);
            src.batches = it == batches.end() ? 0 : it->second;
            for (uint32_t i = 0; i < seg.num_sites; ++i) {
                if (counts[i].executed != 0 || counts[i].taken != 0)
                    src.entries.emplace_back(i, counts[i]);
            }
            seg.sources.push_back(std::move(src));
        }
        const std::string path = dir + "/" + segmentFileName(key);
        const int64_t bytes = writeFileAtomically(
            path, [&](std::ofstream &out) { seg.save(out); });
        if (bytes > 0) {
            ++written;
            segments_written_.fetch_add(1, std::memory_order_relaxed);
            obs::counter("ingest.segments_written").add();
            obs::counter("ingest.segment_write_bytes").add(bytes);
        }
    }
    return written;
}

size_t
ProfileStore::loadSegments(const std::string &dir)
{
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".seg")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    size_t loaded = 0;
    for (const std::string &path : paths) {
        try {
            std::ifstream in(path, std::ios::binary);
            if (!in)
                throw Error("cannot open segment file");
            Segment seg = Segment::load(in);
            std::shared_ptr<Image> image =
                imageFor({seg.program, seg.fingerprint}, seg.num_sites);
            for (const SegmentSource &src : seg.sources) {
                std::vector<SiteDelta> deltas;
                deltas.reserve(src.entries.size());
                for (const auto &[site, counts] : src.entries) {
                    deltas.push_back(
                        {site, counts.executed, counts.taken});
                }
                foldCounts(*image, src.name, deltas, src.batches);
            }
            ++loaded;
            segments_loaded_.fetch_add(1, std::memory_order_relaxed);
            obs::counter("ingest.segments_loaded").add();
            obs::counter("ingest.segment_read_bytes")
                .add(fileSizeOf(path));
        } catch (const Error &e) {
            segment_failures_.fetch_add(1, std::memory_order_relaxed);
            obs::counter("ingest.segment_failures").add();
            noteSegmentFailure(
                strPrintf("%s: %s", path.c_str(), e.what()));
        }
    }
    return loaded;
}

void
ProfileStore::noteSegmentFailure(const std::string &message)
{
    std::lock_guard<std::mutex> lock(failures_mu_);
    if (failures_.size() < kMaxFailureMessages)
        failures_.push_back(message);
}

ProfileStore::Stats
ProfileStore::stats() const
{
    Stats s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.events = events_.load(std::memory_order_relaxed);
    s.rejected_batches =
        rejected_batches_.load(std::memory_order_relaxed);
    s.snapshots = snapshots_.load(std::memory_order_relaxed);
    s.segments_written =
        segments_written_.load(std::memory_order_relaxed);
    s.segments_loaded = segments_loaded_.load(std::memory_order_relaxed);
    s.segment_failures =
        segment_failures_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(failures_mu_);
        s.failures = failures_;
    }
    return s;
}

} // namespace ifprob::ingest

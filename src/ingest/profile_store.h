#ifndef IFPROB_INGEST_PROFILE_STORE_H
#define IFPROB_INGEST_PROFILE_STORE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "profile/profile_db.h"
#include "support/sharded_map.h"
#include "vm/run_stats.h"

namespace ifprob::ingest {

/** One site's count delta inside a batch. */
struct SiteDelta
{
    uint32_t site = 0;
    int64_t executed = 0;
    int64_t taken = 0;
};

/**
 * One batched run-report from a profiling client: count deltas for one
 * compiled image (program name + fingerprint), attributed to one
 * predictor dataset ("source" — in production, one user's runs; in the
 * paper's terms, one of the N datasets a summary predictor merges).
 */
struct RunReport
{
    std::string program;
    uint64_t fingerprint = 0;
    std::string source;
    /** Total branch sites in the image; every batch for an image must
     *  agree (the fingerprint pins the compilation, this pins the
     *  site-id space). */
    uint32_t num_sites = 0;
    std::vector<SiteDelta> deltas;
};

/**
 * The ingest plane: a sharded, concurrent accumulator for batched
 * branch-count reports, with merge-on-read snapshots.
 *
 * The paper's workflow — run, augment the database, predict from the
 * merged profile — becomes a service at production scale: many clients
 * stream (site, executed, taken) deltas for the same images, and
 * readers want the merged ProfileDb at any moment. fold() buckets a
 * batch's deltas by site-range shard and takes each shard lock once,
 * so concurrent writers to different site regions (or different
 * images) do not contend. Accumulators are int64, so folding is
 * commutative and the quiesced store is independent of interleaving.
 *
 * snapshot() assembles each source's dense counts under the shard
 * locks, then runs the same merge the offline path uses. The result is
 * bit-identical to ProfileDb::merge over per-source ProfileDbs given
 * in lexicographic source order, for every MergeMode: counts below
 * 2^53 convert to double exactly, and the kernel mirrors the reference
 * operation for operation (see docs/ingest.md for why this holds).
 * Readers never block writers for longer than one shard copy; a
 * snapshot taken mid-fold may see a batch applied in some shards but
 * not others, which integer commutativity makes harmless once writers
 * quiesce.
 *
 * Persistence is the IFPROBPS binary segment format (segment.h):
 * saveSegments() writes one atomic file per image, loadSegments()
 * folds surviving segments back in and counts — rather than
 * propagates — corrupt or truncated files, so a damaged cache costs
 * re-ingestion, never wrong counts. Plain-text ProfileDb::save stays
 * as the human-readable compatibility format.
 */
class ProfileStore
{
  public:
    /** (program name, image fingerprint): one accumulator per image. */
    using ImageKey = std::pair<std::string, uint64_t>;

    /** Ingest activity counters, mirrored into obs as ingest.*. */
    struct Stats
    {
        int64_t batches = 0;          ///< fold() calls accepted
        int64_t events = 0;           ///< site deltas folded
        int64_t rejected_batches = 0; ///< fold() calls that validated bad
        int64_t snapshots = 0;
        int64_t segments_written = 0;
        int64_t segments_loaded = 0;
        int64_t segment_failures = 0; ///< corrupt/truncated files skipped
        /** First few segment-load failure messages (capped). */
        std::vector<std::string> failures;
    };

    ProfileStore() = default;
    ProfileStore(const ProfileStore &) = delete;
    ProfileStore &operator=(const ProfileStore &) = delete;

    /**
     * Fold one batch into the per-shard accumulators. Validates before
     * touching any shard — an unknown-site, negative, or
     * taken-exceeds-executed delta (or a site count disagreeing with
     * the image's established one) throws Error and leaves the store
     * untouched. Thread-safe against concurrent fold/snapshot calls.
     */
    void fold(const RunReport &report);

    /**
     * Merge-on-read: the combined ProfileDb for @p key under @p mode,
     * bit-identical to ProfileDb::merge over the per-source databases
     * in lexicographic source order. Throws Error for an unknown image.
     */
    profile::ProfileDb snapshot(const ImageKey &key,
                                profile::MergeMode mode) const;

    /** One source's raw accumulated counts as a ProfileDb (the
     *  reference-merge input for differential checks). */
    profile::ProfileDb sourceDb(const ImageKey &key,
                                const std::string &source) const;

    /** Source names seen for @p key with their folded batch counts,
     *  sorted by name. */
    std::vector<std::pair<std::string, int64_t>>
    sources(const ImageKey &key) const;

    /** Every image currently in the store, sorted. */
    std::vector<ImageKey> images() const;

    /** Branch sites of @p key's image; throws for an unknown image. */
    uint32_t numSites(const ImageKey &key) const;

    /**
     * Write one IFPROBPS segment per image into @p dir (created if
     * missing) via atomic temp+rename. Returns segments written.
     */
    size_t saveSegments(const std::string &dir) const;

    /**
     * Fold every *.seg file under @p dir back in. Corrupt, truncated,
     * or otherwise invalid segments are skipped and counted in
     * Stats::segment_failures / ingest.segment_failures — the caller
     * re-ingests those counts from source. Returns segments folded.
     */
    size_t loadSegments(const std::string &dir);

    Stats stats() const;

  private:
    /** Contiguous site ranges are striped across this many
     *  independently locked shards per image. */
    static constexpr uint32_t kSiteShards = 16;

    /** One site-range shard: per-source dense count slices covering
     *  [first_site, first_site + sites) of the image's id space. */
    struct Shard
    {
        mutable std::mutex mu;
        std::map<std::string, std::vector<vm::BranchCounts>> sources;
    };

    /** One compiled image's accumulator. Geometry (site count, shard
     *  array) is fixed by the first batch via call_once; everything
     *  mutable afterwards sits behind shard or meta mutexes. */
    struct Image
    {
        std::once_flag once;
        std::atomic<bool> ready{false};
        uint32_t num_sites = 0;
        uint32_t num_shards = 0;
        uint32_t stride = 0;
        std::unique_ptr<Shard[]> shards;
        mutable std::mutex meta_mu;
        std::map<std::string, int64_t> source_batches;

        uint32_t shardOf(uint32_t site) const { return site / stride; }
        uint32_t firstSite(uint32_t shard) const { return shard * stride; }
        uint32_t sitesIn(uint32_t shard) const
        {
            const uint32_t first = firstSite(shard);
            return std::min(stride, num_sites - first);
        }
    };

    struct ImageKeyHash
    {
        size_t operator()(const ImageKey &k) const
        {
            return std::hash<std::string>{}(k.first) * 31 +
                   std::hash<uint64_t>{}(k.second);
        }
    };

    std::shared_ptr<Image> imageFor(const ImageKey &key,
                                    uint32_t num_sites);
    std::shared_ptr<Image> requireImage(const ImageKey &key) const;

    /** The shared fold path: validated (site, counts) deltas for one
     *  source, bucketed and applied shard by shard. */
    void foldCounts(Image &image, const std::string &source,
                    const std::vector<SiteDelta> &deltas,
                    int64_t batches_delta);

    /** Dense per-source counts assembled under the shard locks, in
     *  lexicographic source order. */
    std::map<std::string, std::vector<vm::BranchCounts>>
    assemble(const Image &image) const;

    void noteSegmentFailure(const std::string &message);

    ShardedSlotMap<ImageKey, Image, ImageKeyHash> images_;

    std::atomic<int64_t> batches_{0};
    std::atomic<int64_t> events_{0};
    std::atomic<int64_t> rejected_batches_{0};
    mutable std::atomic<int64_t> snapshots_{0};
    mutable std::atomic<int64_t> segments_written_{0};
    std::atomic<int64_t> segments_loaded_{0};
    std::atomic<int64_t> segment_failures_{0};
    mutable std::mutex failures_mu_;
    std::vector<std::string> failures_;
};

} // namespace ifprob::ingest

#endif // IFPROB_INGEST_PROFILE_STORE_H

#ifndef IFPROB_INGEST_SEGMENT_H
#define IFPROB_INGEST_SEGMENT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "vm/run_stats.h"

namespace ifprob::ingest {

/**
 * One predictor dataset's accumulated counts inside a segment: the
 * source name (client / dataset identity), how many batches it folded,
 * and a sparse ascending-site list of nonzero (executed, taken) pairs.
 */
struct SegmentSource
{
    std::string name;
    int64_t batches = 0;
    std::vector<std::pair<uint32_t, vm::BranchCounts>> entries;
};

/**
 * The IFPROBPS on-disk segment: one compiled image's entire ingest
 * state — every source's integer branch counts — in the versioned
 * little-endian binary layout shared with the IFPROBRS and IFPROBTR
 * cache formats (see docs/ingest.md for the byte layout).
 *
 * Layout: an 8-byte magic, a u32 format version, a u32 reserved word,
 * the image's u64 fingerprint, a u64 payload length, a u64 FNV-1a
 * checksum of the payload, then the payload: program name
 * (u32 length + bytes), u32 site count, u32 source count, and per
 * source — sorted by name — its name (u32 length + bytes), u64 batch
 * count, u64 entry count, and (u32 site, i64 executed, i64 taken)
 * entries in strictly ascending site order, nonzero sites only.
 *
 * load() rejects anything suspicious with Error: bad magic, an
 * unsupported version, a truncated header or payload, a checksum
 * mismatch, implausible counts, out-of-range or non-ascending sites,
 * and negative or inconsistent counters. The ProfileStore counts each
 * rejected file and keeps going — a corrupt segment costs
 * re-ingestion, never wrong counts.
 */
struct Segment
{
    static constexpr char kMagic[8] = {'I', 'F', 'P', 'R',
                                       'O', 'B', 'P', 'S'};
    static constexpr uint32_t kVersion = 1;

    std::string program;
    uint64_t fingerprint = 0;
    uint32_t num_sites = 0;
    std::vector<SegmentSource> sources;

    /** Write the binary form (open @p os with std::ios::binary). */
    void save(std::ostream &os) const;

    /** Read and validate one segment; throws Error on any defect. */
    static Segment load(std::istream &is);
};

} // namespace ifprob::ingest

#endif // IFPROB_INGEST_SEGMENT_H

#include "ingest/segment.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "support/binio.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::ingest {

namespace {

using binio::getI64;
using binio::getU32;
using binio::getU64;
using binio::putI64;
using binio::putU32;
using binio::putU64;

/** magic + version + reserved + fingerprint + payload length + checksum. */
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;

constexpr uint64_t kMaxPayloadBytes = 1ull << 32;
constexpr uint32_t kMaxNameBytes = 1u << 16;
constexpr uint32_t kMaxSites = 1u << 26;
constexpr uint32_t kMaxSources = 1u << 20;

/** Bounds-checked cursor over the decoded payload. */
struct Cursor
{
    const unsigned char *p;
    const unsigned char *end;

    void
    need(size_t n, const char *what)
    {
        if (static_cast<size_t>(end - p) < n) {
            throw Error(
                strPrintf("Segment::load: truncated %s", what));
        }
    }
    uint32_t
    u32(const char *what)
    {
        need(4, what);
        const uint32_t v = getU32(p);
        p += 4;
        return v;
    }
    uint64_t
    u64(const char *what)
    {
        need(8, what);
        const uint64_t v = getU64(p);
        p += 8;
        return v;
    }
    int64_t
    i64(const char *what)
    {
        need(8, what);
        const int64_t v = getI64(p);
        p += 8;
        return v;
    }
    std::string
    str(size_t n, const char *what)
    {
        need(n, what);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }
};

} // namespace

void
Segment::save(std::ostream &os) const
{
    std::string payload;
    size_t entry_bytes = 0;
    for (const auto &src : sources)
        entry_bytes += 4 + 8 + 8 + 8 + src.name.size() +
                       src.entries.size() * 20;
    payload.reserve(4 + program.size() + 4 + 4 + entry_bytes);
    putU32(payload, static_cast<uint32_t>(program.size()));
    payload.append(program);
    putU32(payload, num_sites);
    putU32(payload, static_cast<uint32_t>(sources.size()));
    for (const auto &src : sources) {
        putU32(payload, static_cast<uint32_t>(src.name.size()));
        payload.append(src.name);
        putU64(payload, static_cast<uint64_t>(src.batches));
        putU64(payload, src.entries.size());
        for (const auto &[site, counts] : src.entries) {
            putU32(payload, site);
            putI64(payload, counts.executed);
            putI64(payload, counts.taken);
        }
    }

    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kMagic, sizeof(kMagic));
    putU32(header, kVersion);
    putU32(header, 0); // reserved
    putU64(header, fingerprint);
    putU64(header, payload.size());
    putU64(header,
           binio::fnv1a(binio::kFnv1aOffset, payload.data(),
                        payload.size()));
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
}

Segment
Segment::load(std::istream &is)
{
    unsigned char header[kHeaderBytes];
    is.read(reinterpret_cast<char *>(header), kHeaderBytes);
    if (static_cast<size_t>(is.gcount()) != kHeaderBytes)
        throw Error("Segment::load: truncated header");
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        throw Error("Segment::load: bad magic");
    const uint32_t version = getU32(header + 8);
    if (version != kVersion) {
        throw Error(strPrintf(
            "Segment::load: unsupported version %u", version));
    }
    Segment seg;
    seg.fingerprint = getU64(header + 16);
    const uint64_t payload_len = getU64(header + 24);
    const uint64_t checksum = getU64(header + 32);
    if (payload_len > kMaxPayloadBytes)
        throw Error("Segment::load: implausible payload length");

    std::string payload(static_cast<size_t>(payload_len), '\0');
    is.read(payload.data(), static_cast<std::streamsize>(payload_len));
    if (static_cast<uint64_t>(is.gcount()) != payload_len)
        throw Error("Segment::load: truncated payload");
    if (binio::fnv1a(binio::kFnv1aOffset, payload.data(),
                     payload.size()) != checksum)
        throw Error("Segment::load: payload checksum mismatch");

    Cursor c{reinterpret_cast<const unsigned char *>(payload.data()),
             reinterpret_cast<const unsigned char *>(payload.data()) +
                 payload.size()};
    const uint32_t program_len = c.u32("program name length");
    if (program_len > kMaxNameBytes)
        throw Error("Segment::load: implausible program name length");
    seg.program = c.str(program_len, "program name");
    seg.num_sites = c.u32("site count");
    if (seg.num_sites > kMaxSites)
        throw Error("Segment::load: implausible site count");
    const uint32_t source_count = c.u32("source count");
    if (source_count > kMaxSources)
        throw Error("Segment::load: implausible source count");
    seg.sources.reserve(source_count);
    std::string prev_name;
    for (uint32_t s = 0; s < source_count; ++s) {
        SegmentSource src;
        const uint32_t name_len = c.u32("source name length");
        if (name_len > kMaxNameBytes)
            throw Error("Segment::load: implausible source name length");
        src.name = c.str(name_len, "source name");
        if (s > 0 && src.name <= prev_name)
            throw Error("Segment::load: source names out of order");
        prev_name = src.name;
        src.batches = c.i64("batch count");
        if (src.batches < 0)
            throw Error("Segment::load: negative batch count");
        const uint64_t entry_count = c.u64("entry count");
        if (entry_count > seg.num_sites)
            throw Error("Segment::load: implausible entry count");
        src.entries.reserve(static_cast<size_t>(entry_count));
        int64_t prev_site = -1;
        for (uint64_t e = 0; e < entry_count; ++e) {
            const uint32_t site = c.u32("entry site");
            vm::BranchCounts counts;
            counts.executed = c.i64("entry counts");
            counts.taken = c.i64("entry counts");
            if (site >= seg.num_sites ||
                static_cast<int64_t>(site) <= prev_site)
                throw Error("Segment::load: entry sites out of order");
            prev_site = static_cast<int64_t>(site);
            if (counts.executed < 0 || counts.taken < 0 ||
                counts.taken > counts.executed)
                throw Error("Segment::load: inconsistent entry counts");
            src.entries.emplace_back(site, counts);
        }
        seg.sources.push_back(std::move(src));
    }
    if (c.p != c.end)
        throw Error("Segment::load: trailing payload bytes");
    // One segment per file: anything after the payload is damage.
    if (is.peek() != std::char_traits<char>::eof())
        throw Error("Segment::load: trailing bytes after payload");
    return seg;
}

} // namespace ifprob::ingest

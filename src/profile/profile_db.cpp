#include "profile/profile_db.h"

#include <istream>
#include <limits>
#include <ostream>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::profile {

std::string_view
mergeModeName(MergeMode mode)
{
    switch (mode) {
      case MergeMode::kUnscaled: return "unscaled";
      case MergeMode::kScaled: return "scaled";
      case MergeMode::kPolling: return "polling";
    }
    return "?";
}

ProfileDb::ProfileDb(std::string program_name, uint64_t fingerprint,
                     size_t num_sites)
    : program_name_(std::move(program_name)), fingerprint_(fingerprint),
      weights_(num_sites)
{
}

ProfileDb::ProfileDb(std::string program_name, uint64_t fingerprint,
                     const vm::RunStats &stats)
    : ProfileDb(std::move(program_name), fingerprint, stats.branches.size())
{
    accumulate(stats);
}

ProfileDb::ProfileDb(std::string program_name, uint64_t fingerprint,
                     std::vector<BranchWeight> weights)
    : program_name_(std::move(program_name)), fingerprint_(fingerprint),
      weights_(std::move(weights))
{
}

double
ProfileDb::totalExecuted() const
{
    double total = 0.0;
    for (const auto &w : weights_)
        total += w.executed;
    return total;
}

void
ProfileDb::checkCompatible(uint64_t fingerprint, size_t sites) const
{
    if (fingerprint != fingerprint_) {
        throw Error(strPrintf(
            "profile for '%s': fingerprint mismatch (%016llx vs %016llx); "
            "the image was compiled differently",
            program_name_.c_str(),
            static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(fingerprint_)));
    }
    if (sites != weights_.size()) {
        throw Error(strPrintf(
            "profile for '%s': branch site count mismatch (%zu vs %zu)",
            program_name_.c_str(), sites, weights_.size()));
    }
}

void
ProfileDb::accumulate(const vm::RunStats &stats)
{
    if (stats.branches.size() != weights_.size()) {
        throw Error(strPrintf(
            "profile for '%s': run has %zu branch sites, database has %zu",
            program_name_.c_str(), stats.branches.size(), weights_.size()));
    }
    for (size_t i = 0; i < weights_.size(); ++i) {
        weights_[i].executed +=
            static_cast<double>(stats.branches[i].executed);
        weights_[i].taken += static_cast<double>(stats.branches[i].taken);
    }
}

void
ProfileDb::accumulate(const ProfileDb &other)
{
    checkCompatible(other.fingerprint_, other.weights_.size());
    for (size_t i = 0; i < weights_.size(); ++i) {
        weights_[i].executed += other.weights_[i].executed;
        weights_[i].taken += other.weights_[i].taken;
    }
}

ProfileDb
ProfileDb::merge(std::span<const ProfileDb> inputs, MergeMode mode)
{
    if (inputs.empty())
        throw Error("ProfileDb::merge: no inputs");
    ProfileDb out(inputs[0].program_name_, inputs[0].fingerprint_,
                  inputs[0].weights_.size());
    for (const ProfileDb &db : inputs) {
        out.checkCompatible(db.fingerprint_, db.weights_.size());
        switch (mode) {
          case MergeMode::kUnscaled:
            for (size_t i = 0; i < out.weights_.size(); ++i) {
                out.weights_[i].executed += db.weights_[i].executed;
                out.weights_[i].taken += db.weights_[i].taken;
            }
            break;
          case MergeMode::kScaled: {
            double total = db.totalExecuted();
            if (total <= 0.0)
                break; // an empty run contributes nothing
            for (size_t i = 0; i < out.weights_.size(); ++i) {
                out.weights_[i].executed += db.weights_[i].executed / total;
                out.weights_[i].taken += db.weights_[i].taken / total;
            }
            break;
          }
          case MergeMode::kPolling:
            // One vote per dataset: a branch votes "taken" when the
            // dataset saw it go taken more often than not.
            for (size_t i = 0; i < out.weights_.size(); ++i) {
                const BranchWeight &w = db.weights_[i];
                if (w.executed <= 0.0)
                    continue;
                out.weights_[i].executed += 1.0;
                if (w.taken * 2.0 > w.executed)
                    out.weights_[i].taken += 1.0;
            }
            break;
        }
    }
    return out;
}

void
ProfileDb::save(std::ostream &os) const
{
    os << "ifprob-profile v1\n";
    os << program_name_ << '\n';
    os << strPrintf("%016llx",
                    static_cast<unsigned long long>(fingerprint_))
       << '\n';
    os << weights_.size() << '\n';
    // max_digits10 significant digits round-trip every double exactly
    // (scaled-mode weights are non-representable fractions, not
    // integers). The caller's precision is restored on the way out.
    const auto saved_precision =
        os.precision(std::numeric_limits<double>::max_digits10);
    for (const auto &w : weights_)
        os << w.executed << ' ' << w.taken << '\n';
    os.precision(saved_precision);
}

ProfileDb
ProfileDb::load(std::istream &is)
{
    std::string tag, version;
    is >> tag >> version;
    if (tag != "ifprob-profile" || version != "v1")
        throw Error("ProfileDb::load: bad header");
    ProfileDb db;
    is >> db.program_name_;
    std::string fp_hex;
    is >> fp_hex;
    db.fingerprint_ = std::stoull(fp_hex, nullptr, 16);
    size_t n = 0;
    is >> n;
    if (!is || n > (1u << 26))
        throw Error("ProfileDb::load: corrupt site count");
    db.weights_.resize(n);
    for (auto &w : db.weights_)
        is >> w.executed >> w.taken;
    if (!is)
        throw Error("ProfileDb::load: truncated input");
    return db;
}

} // namespace ifprob::profile

#ifndef IFPROB_PROFILE_PROFILE_DB_H
#define IFPROB_PROFILE_PROFILE_DB_H

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "vm/run_stats.h"

namespace ifprob::profile {

/**
 * Accumulated direction weights for one static branch site.
 *
 * Weights are doubles: raw databases hold exact integer counts, while
 * merged databases (scaled mode) hold normalized fractional weights.
 */
struct BranchWeight
{
    double executed = 0.0;
    double taken = 0.0;

    double notTaken() const { return executed - taken; }
};

/** How to combine multiple predictor datasets (paper §3, "Scaled vs
 *  unscaled summary predictors"). */
enum class MergeMode {
    /** Add the raw counts of every dataset. */
    kUnscaled,
    /** Divide each dataset's counts by its total executed branches first,
     *  giving every dataset equal total weight. The paper's reported
     *  configuration. */
    kScaled,
    /** One vote per dataset per branch, regardless of execution count.
     *  The paper found this performs poorly. */
    kPolling,
};

std::string_view mergeModeName(MergeMode mode);

/**
 * The IFPROBBER database: per-branch (encountered, taken) weights keyed by
 * static branch site id, tagged with the program name and the compiled
 * image's fingerprint so that a profile cannot silently be applied to a
 * different compilation.
 */
class ProfileDb
{
  public:
    ProfileDb() = default;

    /** Build an empty database for @p num_sites branch sites. */
    ProfileDb(std::string program_name, uint64_t fingerprint,
              size_t num_sites);

    /** Build directly from one run's counters. */
    ProfileDb(std::string program_name, uint64_t fingerprint,
              const vm::RunStats &stats);

    /** Build from already-computed per-site weights (the ingest plane's
     *  merge-on-read snapshots assemble these outside the class). */
    ProfileDb(std::string program_name, uint64_t fingerprint,
              std::vector<BranchWeight> weights);

    const std::string &programName() const { return program_name_; }
    uint64_t fingerprint() const { return fingerprint_; }
    size_t numSites() const { return weights_.size(); }
    const BranchWeight &site(size_t id) const { return weights_[id]; }
    const std::vector<BranchWeight> &weights() const { return weights_; }

    /** Total branch executions recorded (the scaling denominator). */
    double totalExecuted() const;

    /**
     * Add another run of the same image into this database — the
     * "database of branch counts is augmented" step after every
     * IFPROBBER run. Throws on fingerprint or size mismatch.
     */
    void accumulate(const vm::RunStats &stats);
    void accumulate(const ProfileDb &other);

    /**
     * Combine several databases (one per predictor dataset) into a single
     * summary predictor using @p mode. All inputs must share a fingerprint.
     */
    static ProfileDb merge(std::span<const ProfileDb> inputs, MergeMode mode);

    /**
     * Plain-text serialization — the compatibility format (the ingest
     * plane's IFPROBPS binary segments are the hot path, see
     * docs/ingest.md). Weights are written with max_digits10
     * significant digits, so every double — including the fractional
     * weights scaled merging produces — round-trips bit-exactly.
     */
    void save(std::ostream &os) const;
    static ProfileDb load(std::istream &is);

  private:
    void checkCompatible(uint64_t fingerprint, size_t sites) const;

    std::string program_name_;
    uint64_t fingerprint_ = 0;
    std::vector<BranchWeight> weights_;
};

} // namespace ifprob::profile

#endif // IFPROB_PROFILE_PROFILE_DB_H

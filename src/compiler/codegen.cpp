#include "compiler/codegen.h"

#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>

#include "support/error.h"
#include "support/str.h"

namespace ifprob {

using isa::BranchKind;
using isa::Instruction;
using isa::Opcode;
using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;
using lang::SourceLoc;
using lang::Stmt;
using lang::StmtKind;
using lang::Type;
using lang::UnaryOp;

namespace {

/** A compile-time constant value (for global initializers). */
struct ConstVal
{
    Type type = Type::kInt;
    int64_t i = 0;
    double f = 0.0;

    int64_t
    asInt() const
    {
        return type == Type::kInt ? i : static_cast<int64_t>(f);
    }

    double
    asFloat() const
    {
        return type == Type::kFloat ? f : static_cast<double>(i);
    }

    /** Bit pattern as stored in data memory. */
    int64_t
    bits() const
    {
        return type == Type::kInt ? i : std::bit_cast<int64_t>(f);
    }
};

/** Recognized builtin functions. */
enum class Builtin {
    kGetc, kPutc, kPutF, kPuts, kHalt,
    kItoF, kFtoI,
    kSqrt, kExp, kLog, kSin, kCos, kFAbs,
    kICall,
};

const std::unordered_map<std::string, Builtin> kBuiltins = {
    {"getc", Builtin::kGetc},   {"putc", Builtin::kPutc},
    {"putf", Builtin::kPutF},   {"puts", Builtin::kPuts},
    {"halt", Builtin::kHalt},   {"itof", Builtin::kItoF},
    {"ftoi", Builtin::kFtoI},   {"sqrt", Builtin::kSqrt},
    {"exp", Builtin::kExp},     {"log", Builtin::kLog},
    {"sin", Builtin::kSin},     {"cos", Builtin::kCos},
    {"fabs", Builtin::kFAbs},   {"icall", Builtin::kICall},
};

struct GlobalInfo
{
    Type type = Type::kInt;
    bool is_array = false;
    int64_t size = 1;
    int64_t address = 0;
};

struct FuncInfo
{
    int index = -1;
    Type return_type = Type::kVoid;
    std::vector<Type> param_types;
};

struct LocalInfo
{
    int reg = -1;
    Type type = Type::kInt;
};

/** An evaluated expression: the register holding it plus its type. */
struct Value
{
    int reg = -1;
    Type type = Type::kInt;
};

/** Resolved assignable location. */
struct LValue
{
    enum Kind { kLocal, kGlobalScalar, kArrayElem } kind = kLocal;
    Type type = Type::kInt;
    int reg = -1;       ///< local: variable register; array: index register
    int64_t addr = 0;   ///< global scalar / array base address
};

class CodeGen
{
  public:
    CodeGen(const std::vector<const lang::Unit *> &units,
            const CompileOptions &options)
        : units_(units), options_(options)
    {
    }

    isa::Program
    run()
    {
        declareAll();
        for (const lang::Unit *unit : units_) {
            for (const lang::FuncDecl &fn : unit->functions)
                genFunction(fn);
        }
        finishProgram();
        if (!diags_.empty()) {
            std::string msg;
            for (const auto &d : diags_) {
                if (!msg.empty())
                    msg.push_back('\n');
                msg += d;
            }
            throw CompileError(msg);
        }
        return std::move(program_);
    }

  private:
    // --- diagnostics -------------------------------------------------------

    void
    error(SourceLoc loc, const std::string &msg)
    {
        diags_.push_back(strPrintf("%d:%d: error: %s", loc.line, loc.col,
                                   msg.c_str()));
    }

    // --- declaration pass --------------------------------------------------

    void
    declareAll()
    {
        for (const lang::Unit *unit : units_) {
            for (const lang::GlobalVarDecl &g : unit->globals)
                declareGlobal(g);
            for (const lang::FuncDecl &fn : unit->functions)
                declareFunction(fn);
        }
    }

    void
    declareGlobal(const lang::GlobalVarDecl &g)
    {
        if (globals_.count(g.name) || functions_.count(g.name)) {
            error(g.loc, "redefinition of '" + g.name + "'");
            return;
        }
        GlobalInfo info;
        info.type = g.type;
        info.is_array = g.array_size >= 0;
        info.size = info.is_array ? g.array_size : 1;
        if (info.is_array && info.size <= 0) {
            error(g.loc, "array '" + g.name + "' must have positive size");
            info.size = 1;
        }
        info.address = next_address_;
        next_address_ += info.size;
        globals_.emplace(g.name, info);
        program_.globals.push_back(
            isa::GlobalSlot{g.name, info.address, info.size});

        // Initializers.
        auto init_word = [&](int64_t addr, const Expr &e) {
            std::optional<ConstVal> v = constEval(e);
            if (!v) {
                error(e.loc, "global initializer must be a constant "
                             "expression");
                return;
            }
            ConstVal converted;
            converted.type = g.type;
            if (g.type == Type::kInt)
                converted.i = v->asInt();
            else
                converted.f = v->asFloat();
            if (converted.bits() != 0)
                data_init_.push_back({addr, converted.bits()});
        };
        if (g.init)
            init_word(info.address, *g.init);
        if (!g.init_list.empty()) {
            if (static_cast<int64_t>(g.init_list.size()) > info.size) {
                error(g.loc, strPrintf("too many initializers for '%s' "
                                       "(%zu > %lld)", g.name.c_str(),
                                       g.init_list.size(),
                                       static_cast<long long>(info.size)));
            } else {
                for (size_t i = 0; i < g.init_list.size(); ++i)
                    init_word(info.address + static_cast<int64_t>(i),
                              *g.init_list[i]);
            }
        }
    }

    void
    declareFunction(const lang::FuncDecl &fn)
    {
        if (kBuiltins.count(fn.name)) {
            error(fn.loc, "'" + fn.name + "' redefines a builtin function");
            return;
        }
        if (functions_.count(fn.name) || globals_.count(fn.name)) {
            error(fn.loc, "redefinition of '" + fn.name + "'");
            return;
        }
        FuncInfo info;
        info.index = static_cast<int>(program_.functions.size());
        info.return_type = fn.return_type;
        for (const auto &p : fn.params)
            info.param_types.push_back(p.type);
        functions_.emplace(fn.name, info);

        isa::Function out;
        out.name = fn.name;
        out.num_params = static_cast<int>(fn.params.size());
        out.returns_float = fn.return_type == Type::kFloat;
        program_.functions.push_back(std::move(out));
    }

    // --- constant evaluation ------------------------------------------------

    std::optional<ConstVal>
    constEval(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::kIntLit:
            return ConstVal{Type::kInt,
                            static_cast<const lang::IntLit &>(e).value, 0.0};
          case ExprKind::kFloatLit:
            return ConstVal{Type::kFloat, 0,
                            static_cast<const lang::FloatLit &>(e).value};
          case ExprKind::kUnary: {
            const auto &u = static_cast<const lang::UnaryExpr &>(e);
            auto v = constEval(*u.operand);
            if (!v)
                return std::nullopt;
            switch (u.op) {
              case UnaryOp::kNeg:
                if (v->type == Type::kInt)
                    return ConstVal{Type::kInt, -v->i, 0.0};
                return ConstVal{Type::kFloat, 0, -v->f};
              case UnaryOp::kBitNot:
                if (v->type != Type::kInt)
                    return std::nullopt;
                return ConstVal{Type::kInt, ~v->i, 0.0};
              case UnaryOp::kLogNot:
                if (v->type == Type::kInt)
                    return ConstVal{Type::kInt, v->i == 0 ? 1 : 0, 0.0};
                return ConstVal{Type::kInt, v->f == 0.0 ? 1 : 0, 0.0};
              default:
                return std::nullopt;
            }
          }
          case ExprKind::kBinary: {
            const auto &b = static_cast<const lang::BinaryExpr &>(e);
            auto l = constEval(*b.lhs);
            auto r = constEval(*b.rhs);
            if (!l || !r)
                return std::nullopt;
            bool fp = l->type == Type::kFloat || r->type == Type::kFloat;
            if (fp) {
                double x = l->asFloat(), y = r->asFloat();
                switch (b.op) {
                  case BinaryOp::kAdd: return ConstVal{Type::kFloat, 0, x + y};
                  case BinaryOp::kSub: return ConstVal{Type::kFloat, 0, x - y};
                  case BinaryOp::kMul: return ConstVal{Type::kFloat, 0, x * y};
                  case BinaryOp::kDiv:
                    if (y == 0.0)
                        return std::nullopt;
                    return ConstVal{Type::kFloat, 0, x / y};
                  case BinaryOp::kLt: return ConstVal{Type::kInt, x < y, 0.0};
                  case BinaryOp::kLe: return ConstVal{Type::kInt, x <= y, 0.0};
                  case BinaryOp::kGt: return ConstVal{Type::kInt, x > y, 0.0};
                  case BinaryOp::kGe: return ConstVal{Type::kInt, x >= y, 0.0};
                  case BinaryOp::kEq: return ConstVal{Type::kInt, x == y, 0.0};
                  case BinaryOp::kNe: return ConstVal{Type::kInt, x != y, 0.0};
                  default: return std::nullopt;
                }
            }
            int64_t x = l->i, y = r->i;
            switch (b.op) {
              case BinaryOp::kAdd: return ConstVal{Type::kInt, x + y, 0.0};
              case BinaryOp::kSub: return ConstVal{Type::kInt, x - y, 0.0};
              case BinaryOp::kMul: return ConstVal{Type::kInt, x * y, 0.0};
              case BinaryOp::kDiv:
                if (y == 0)
                    return std::nullopt;
                return ConstVal{Type::kInt, x / y, 0.0};
              case BinaryOp::kRem:
                if (y == 0)
                    return std::nullopt;
                return ConstVal{Type::kInt, x % y, 0.0};
              case BinaryOp::kBitAnd: return ConstVal{Type::kInt, x & y, 0.0};
              case BinaryOp::kBitOr: return ConstVal{Type::kInt, x | y, 0.0};
              case BinaryOp::kBitXor: return ConstVal{Type::kInt, x ^ y, 0.0};
              case BinaryOp::kShl:
                return ConstVal{Type::kInt,
                                static_cast<int64_t>(
                                    static_cast<uint64_t>(x) << (y & 63)),
                                0.0};
              case BinaryOp::kShr: return ConstVal{Type::kInt, x >> (y & 63), 0.0};
              case BinaryOp::kLt: return ConstVal{Type::kInt, x < y, 0.0};
              case BinaryOp::kLe: return ConstVal{Type::kInt, x <= y, 0.0};
              case BinaryOp::kGt: return ConstVal{Type::kInt, x > y, 0.0};
              case BinaryOp::kGe: return ConstVal{Type::kInt, x >= y, 0.0};
              case BinaryOp::kEq: return ConstVal{Type::kInt, x == y, 0.0};
              case BinaryOp::kNe: return ConstVal{Type::kInt, x != y, 0.0};
              case BinaryOp::kLogAnd:
                return ConstVal{Type::kInt, (x != 0) && (y != 0), 0.0};
              case BinaryOp::kLogOr:
                return ConstVal{Type::kInt, (x != 0) || (y != 0), 0.0};
            }
            return std::nullopt;
          }
          case ExprKind::kTernary: {
            const auto &t = static_cast<const lang::TernaryExpr &>(e);
            auto c = constEval(*t.cond);
            if (!c)
                return std::nullopt;
            bool truth = c->type == Type::kInt ? c->i != 0 : c->f != 0.0;
            return constEval(truth ? *t.then_value : *t.else_value);
          }
          default:
            return std::nullopt;
        }
    }

    // --- function body generation -------------------------------------------

    int
    newReg()
    {
        return num_regs_++;
    }

    int
    newLabel()
    {
        labels_.push_back(-1);
        return static_cast<int>(labels_.size()) - 1;
    }

    void
    bind(int label)
    {
        labels_[static_cast<size_t>(label)] = static_cast<int>(code_.size());
    }

    void
    emit(Instruction insn)
    {
        code_.push_back(insn);
    }

    /** Emit a conditional branch whose targets are *labels* (fixed up at
     *  function end) and register its static branch site. */
    void
    emitBranch(int cond_reg, int true_label, int false_label,
               BranchKind kind, SourceLoc loc, Opcode compare)
    {
        int id = static_cast<int>(program_.branch_sites.size());
        isa::BranchSite site;
        site.function = cur_func_index_;
        site.line = loc.line;
        site.kind = kind;
        site.compare = compare;
        program_.branch_sites.push_back(site);
        emit(isa::makeBr(cond_reg, true_label, false_label, id));
    }

    void
    emitJump(int label)
    {
        emit(isa::makeJmp(label));
    }

    void
    genFunction(const lang::FuncDecl &fn)
    {
        auto it = functions_.find(fn.name);
        if (it == functions_.end() || it->second.index < 0)
            return; // declaration failed
        cur_func_index_ = it->second.index;
        cur_return_type_ = fn.return_type;
        num_regs_ = 0;
        code_.clear();
        labels_.clear();
        scopes_.clear();
        break_labels_.clear();
        continue_labels_.clear();

        pushScope();
        for (const auto &p : fn.params) {
            int reg = newReg();
            if (!declareLocal(p.name, LocalInfo{reg, p.type}))
                error(p.loc, "duplicate parameter '" + p.name + "'");
        }
        genStmt(*fn.body);
        popScope();

        // Implicit epilogue: void functions just return; value-returning
        // functions fall off the end with 0 (defensive — well-formed
        // workloads return explicitly).
        if (fn.return_type == Type::kVoid) {
            emit(isa::makeRet(-1));
        } else {
            int r = newReg();
            if (fn.return_type == Type::kFloat)
                emit(isa::makeMovF(r, 0.0));
            else
                emit(isa::makeMovI(r, 0));
            emit(isa::makeRet(r));
        }

        // Fix up label references into instruction indices.
        for (size_t pc = 0; pc < code_.size(); ++pc) {
            Instruction &insn = code_[pc];
            if (insn.op == Opcode::kBr) {
                insn.b = resolveLabel(insn.b, fn.loc);
                insn.c = resolveLabel(insn.c, fn.loc);
                // Record the loop-shape bit used by heuristic predictors.
                auto &site = program_.branch_sites[static_cast<size_t>(insn.imm)];
                site.backward = insn.b <= static_cast<int>(pc);
            } else if (insn.op == Opcode::kJmp) {
                insn.a = resolveLabel(insn.a, fn.loc);
            }
        }

        isa::Function &out = program_.functions[static_cast<size_t>(cur_func_index_)];
        out.num_regs = std::max(num_regs_, out.num_params);
        out.code = std::move(code_);
        code_.clear();
    }

    int
    resolveLabel(int label, SourceLoc loc)
    {
        if (label < 0 || label >= static_cast<int>(labels_.size()) ||
            labels_[static_cast<size_t>(label)] < 0) {
            error(loc, "internal: unresolved label");
            return 0;
        }
        return labels_[static_cast<size_t>(label)];
    }

    // --- scopes -------------------------------------------------------------

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    bool
    declareLocal(const std::string &name, LocalInfo info)
    {
        auto &scope = scopes_.back();
        if (scope.count(name))
            return false;
        scope.emplace(name, info);
        return true;
    }

    const LocalInfo *
    lookupLocal(const std::string &name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    // --- type helpers -------------------------------------------------------

    /** Convert @p v to @p want, emitting itof/ftoi as needed. */
    Value
    convert(Value v, Type want, SourceLoc loc)
    {
        if (v.type == want)
            return v;
        if (v.type == Type::kVoid || want == Type::kVoid) {
            error(loc, "void value used");
            return {materializeZero(want), want};
        }
        int dst = newReg();
        emit(isa::makeUnary(want == Type::kFloat ? Opcode::kItoF
                                                 : Opcode::kFtoI,
                            dst, v.reg));
        return {dst, want};
    }

    int
    materializeZero(Type type)
    {
        int r = newReg();
        if (type == Type::kFloat)
            emit(isa::makeMovF(r, 0.0));
        else
            emit(isa::makeMovI(r, 0));
        return r;
    }

    /** Normalize a value for use as a branch condition: ints pass through,
     *  floats become (f != 0.0). Returns the condition register. */
    int
    condReg(Value v, SourceLoc loc)
    {
        if (v.type == Type::kVoid) {
            error(loc, "void value used as condition");
            return materializeZero(Type::kInt);
        }
        if (v.type == Type::kInt)
            return v.reg;
        int zero = materializeZero(Type::kFloat);
        int dst = newReg();
        emit(isa::makeBinary(Opcode::kFCmpNe, dst, v.reg, zero));
        return dst;
    }

    // --- conditions (short-circuit lowering) ---------------------------------

    static bool
    isCompare(BinaryOp op)
    {
        switch (op) {
          case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
          case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
            return true;
          default:
            return false;
        }
    }

    static Opcode
    compareOpcode(BinaryOp op, bool fp)
    {
        switch (op) {
          case BinaryOp::kEq: return fp ? Opcode::kFCmpEq : Opcode::kCmpEq;
          case BinaryOp::kNe: return fp ? Opcode::kFCmpNe : Opcode::kCmpNe;
          case BinaryOp::kLt: return fp ? Opcode::kFCmpLt : Opcode::kCmpLt;
          case BinaryOp::kLe: return fp ? Opcode::kFCmpLe : Opcode::kCmpLe;
          case BinaryOp::kGt: return fp ? Opcode::kFCmpGt : Opcode::kCmpGt;
          case BinaryOp::kGe: return fp ? Opcode::kFCmpGe : Opcode::kCmpGe;
          default: return Opcode::kNop;
        }
    }

    /**
     * Emit control flow so execution reaches @p true_label when @p e is
     * truthy and @p false_label otherwise. Short-circuit operators expand
     * into separate branch sites, as a conventional compiler generates.
     */
    void
    genCond(const Expr &e, int true_label, int false_label, BranchKind kind)
    {
        if (e.kind == ExprKind::kBinary) {
            const auto &b = static_cast<const lang::BinaryExpr &>(e);
            if (b.op == BinaryOp::kLogAnd) {
                int mid = newLabel();
                genCond(*b.lhs, mid, false_label, kind);
                bind(mid);
                genCond(*b.rhs, true_label, false_label, kind);
                return;
            }
            if (b.op == BinaryOp::kLogOr) {
                int mid = newLabel();
                genCond(*b.lhs, true_label, mid, kind);
                bind(mid);
                genCond(*b.rhs, true_label, false_label, kind);
                return;
            }
            if (isCompare(b.op)) {
                Value lhs = genExpr(*b.lhs);
                Value rhs = genExpr(*b.rhs);
                bool fp = lhs.type == Type::kFloat || rhs.type == Type::kFloat;
                Type operand_type = fp ? Type::kFloat : Type::kInt;
                lhs = convert(lhs, operand_type, b.loc);
                rhs = convert(rhs, operand_type, b.loc);
                Opcode cmp = compareOpcode(b.op, fp);
                int dst = newReg();
                emit(isa::makeBinary(cmp, dst, lhs.reg, rhs.reg));
                emitBranch(dst, true_label, false_label, kind, b.loc, cmp);
                return;
            }
        }
        if (e.kind == ExprKind::kUnary) {
            const auto &u = static_cast<const lang::UnaryExpr &>(e);
            if (u.op == UnaryOp::kLogNot) {
                genCond(*u.operand, false_label, true_label, kind);
                return;
            }
        }
        // Constant conditions become unconditional jumps — even without
        // dead-code elimination a compiler does not emit a test for
        // `while (1)`.
        if (auto cv = constEval(e)) {
            bool truth = cv->type == Type::kInt ? cv->i != 0 : cv->f != 0.0;
            emitJump(truth ? true_label : false_label);
            return;
        }
        Value v = genExpr(e);
        int reg = condReg(v, e.loc);
        emitBranch(reg, true_label, false_label, kind, e.loc, Opcode::kNop);
    }

    // --- lvalues -------------------------------------------------------------

    std::optional<LValue>
    genLValue(const Expr &e)
    {
        if (e.kind == ExprKind::kVarRef) {
            const auto &v = static_cast<const lang::VarRef &>(e);
            if (const LocalInfo *local = lookupLocal(v.name))
                return LValue{LValue::kLocal, local->type, local->reg, 0};
            auto git = globals_.find(v.name);
            if (git != globals_.end()) {
                if (git->second.is_array) {
                    error(e.loc, "array '" + v.name +
                                 "' used without an index");
                    return std::nullopt;
                }
                return LValue{LValue::kGlobalScalar, git->second.type, -1,
                              git->second.address};
            }
            if (functions_.count(v.name)) {
                error(e.loc, "'" + v.name + "' is a function; use &" +
                             v.name + " to take its address");
                return std::nullopt;
            }
            error(e.loc, "use of undeclared identifier '" + v.name + "'");
            return std::nullopt;
        }
        if (e.kind == ExprKind::kIndex) {
            const auto &ix = static_cast<const lang::IndexExpr &>(e);
            auto git = globals_.find(ix.array);
            if (git == globals_.end()) {
                error(e.loc, "use of undeclared array '" + ix.array + "'");
                return std::nullopt;
            }
            if (!git->second.is_array) {
                error(e.loc, "'" + ix.array + "' is not an array");
                return std::nullopt;
            }
            Value index = convert(genExpr(*ix.index), Type::kInt, ix.loc);
            return LValue{LValue::kArrayElem, git->second.type, index.reg,
                          git->second.address};
        }
        error(e.loc, "expression is not assignable");
        return std::nullopt;
    }

    Value
    readLValue(const LValue &lv)
    {
        switch (lv.kind) {
          case LValue::kLocal:
            return {lv.reg, lv.type};
          case LValue::kGlobalScalar: {
            int dst = newReg();
            emit(isa::makeLoad(dst, -1, lv.addr));
            return {dst, lv.type};
          }
          case LValue::kArrayElem: {
            int dst = newReg();
            emit(isa::makeLoad(dst, lv.reg, lv.addr));
            return {dst, lv.type};
          }
        }
        return {materializeZero(Type::kInt), Type::kInt};
    }

    void
    writeLValue(const LValue &lv, int reg)
    {
        switch (lv.kind) {
          case LValue::kLocal:
            emit(isa::makeUnary(Opcode::kMov, lv.reg, reg));
            return;
          case LValue::kGlobalScalar:
            emit(isa::makeStore(reg, -1, lv.addr));
            return;
          case LValue::kArrayElem:
            emit(isa::makeStore(reg, lv.reg, lv.addr));
            return;
        }
    }

    // --- expressions ---------------------------------------------------------

    Value
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::kIntLit: {
            int dst = newReg();
            emit(isa::makeMovI(dst, static_cast<const lang::IntLit &>(e).value));
            return {dst, Type::kInt};
          }
          case ExprKind::kFloatLit: {
            int dst = newReg();
            emit(isa::makeMovF(dst,
                               static_cast<const lang::FloatLit &>(e).value));
            return {dst, Type::kFloat};
          }
          case ExprKind::kStringLit:
            error(e.loc, "string literals are only allowed as the argument "
                         "of puts()");
            return {materializeZero(Type::kInt), Type::kInt};
          case ExprKind::kVarRef:
          case ExprKind::kIndex: {
            auto lv = genLValue(e);
            if (!lv)
                return {materializeZero(Type::kInt), Type::kInt};
            return readLValue(*lv);
          }
          case ExprKind::kFuncAddr: {
            const auto &fa = static_cast<const lang::FuncAddrExpr &>(e);
            auto it = functions_.find(fa.name);
            if (it == functions_.end()) {
                error(e.loc, "unknown function '" + fa.name + "'");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            int dst = newReg();
            emit(isa::makeMovI(dst, it->second.index));
            return {dst, Type::kInt};
          }
          case ExprKind::kUnary:
            return genUnary(static_cast<const lang::UnaryExpr &>(e));
          case ExprKind::kBinary:
            return genBinary(static_cast<const lang::BinaryExpr &>(e));
          case ExprKind::kAssign:
            return genAssign(static_cast<const lang::AssignExpr &>(e));
          case ExprKind::kTernary:
            return genTernary(static_cast<const lang::TernaryExpr &>(e));
          case ExprKind::kCall:
            return genCall(static_cast<const lang::CallExpr &>(e));
        }
        error(e.loc, "internal: unhandled expression kind");
        return {materializeZero(Type::kInt), Type::kInt};
    }

    Value
    genUnary(const lang::UnaryExpr &u)
    {
        switch (u.op) {
          case UnaryOp::kNeg: {
            Value v = genExpr(*u.operand);
            if (v.type == Type::kVoid) {
                error(u.loc, "void value used");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            int dst = newReg();
            emit(isa::makeUnary(v.type == Type::kFloat ? Opcode::kFNeg
                                                       : Opcode::kNeg,
                                dst, v.reg));
            return {dst, v.type};
          }
          case UnaryOp::kBitNot: {
            Value v = convert(genExpr(*u.operand), Type::kInt, u.loc);
            int dst = newReg();
            emit(isa::makeUnary(Opcode::kNot, dst, v.reg));
            return {dst, Type::kInt};
          }
          case UnaryOp::kLogNot: {
            Value v = genExpr(*u.operand);
            int zero = materializeZero(v.type == Type::kFloat ? Type::kFloat
                                                              : Type::kInt);
            int dst = newReg();
            emit(isa::makeBinary(v.type == Type::kFloat ? Opcode::kFCmpEq
                                                        : Opcode::kCmpEq,
                                 dst, condOperand(v, u.loc), zero));
            return {dst, Type::kInt};
          }
          case UnaryOp::kPreInc:
          case UnaryOp::kPreDec:
          case UnaryOp::kPostInc:
          case UnaryOp::kPostDec: {
            auto lv = genLValue(*u.operand);
            if (!lv)
                return {materializeZero(Type::kInt), Type::kInt};
            Value old_value = readLValue(*lv);
            bool post = u.op == UnaryOp::kPostInc || u.op == UnaryOp::kPostDec;
            bool inc = u.op == UnaryOp::kPreInc || u.op == UnaryOp::kPostInc;
            int saved = -1;
            if (post) {
                saved = newReg();
                emit(isa::makeUnary(Opcode::kMov, saved, old_value.reg));
            }
            int one = newReg();
            int updated = newReg();
            if (lv->type == Type::kFloat) {
                emit(isa::makeMovF(one, 1.0));
                emit(isa::makeBinary(inc ? Opcode::kFAdd : Opcode::kFSub,
                                     updated, old_value.reg, one));
            } else {
                emit(isa::makeMovI(one, 1));
                emit(isa::makeBinary(inc ? Opcode::kAdd : Opcode::kSub,
                                     updated, old_value.reg, one));
            }
            writeLValue(*lv, updated);
            return {post ? saved : updated, lv->type};
          }
        }
        error(u.loc, "internal: unhandled unary operator");
        return {materializeZero(Type::kInt), Type::kInt};
    }

    /** Like condReg but for already-evaluated values of int type; used where
     *  the operand register is needed directly. */
    int
    condOperand(Value v, SourceLoc loc)
    {
        if (v.type == Type::kVoid) {
            error(loc, "void value used");
            return materializeZero(Type::kInt);
        }
        return v.reg;
    }

    Value
    genBinary(const lang::BinaryExpr &b)
    {
        // Short-circuit operators in value position materialize 0/1 through
        // control flow — they create real branch sites, exactly as C
        // compilers of the paper's era generated them.
        if (b.op == BinaryOp::kLogAnd || b.op == BinaryOp::kLogOr) {
            int result = newReg();
            int l_true = newLabel();
            int l_false = newLabel();
            int l_end = newLabel();
            genCond(b, l_true, l_false, BranchKind::kLogical);
            bind(l_true);
            emit(isa::makeMovI(result, 1));
            emitJump(l_end);
            bind(l_false);
            emit(isa::makeMovI(result, 0));
            bind(l_end);
            return {result, Type::kInt};
        }

        Value lhs = genExpr(*b.lhs);
        Value rhs = genExpr(*b.rhs);
        if (lhs.type == Type::kVoid || rhs.type == Type::kVoid) {
            error(b.loc, "void value used in binary expression");
            return {materializeZero(Type::kInt), Type::kInt};
        }
        bool fp = lhs.type == Type::kFloat || rhs.type == Type::kFloat;

        if (isCompare(b.op)) {
            Type operand_type = fp ? Type::kFloat : Type::kInt;
            lhs = convert(lhs, operand_type, b.loc);
            rhs = convert(rhs, operand_type, b.loc);
            int dst = newReg();
            emit(isa::makeBinary(compareOpcode(b.op, fp), dst, lhs.reg,
                                 rhs.reg));
            return {dst, Type::kInt};
        }

        switch (b.op) {
          case BinaryOp::kRem: case BinaryOp::kBitAnd: case BinaryOp::kBitOr:
          case BinaryOp::kBitXor: case BinaryOp::kShl: case BinaryOp::kShr:
            if (fp) {
                error(b.loc, "integer operator applied to float operands");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            break;
          default:
            break;
        }

        Type result_type = fp ? Type::kFloat : Type::kInt;
        lhs = convert(lhs, result_type, b.loc);
        rhs = convert(rhs, result_type, b.loc);
        Opcode op;
        switch (b.op) {
          case BinaryOp::kAdd: op = fp ? Opcode::kFAdd : Opcode::kAdd; break;
          case BinaryOp::kSub: op = fp ? Opcode::kFSub : Opcode::kSub; break;
          case BinaryOp::kMul: op = fp ? Opcode::kFMul : Opcode::kMul; break;
          case BinaryOp::kDiv: op = fp ? Opcode::kFDiv : Opcode::kDiv; break;
          case BinaryOp::kRem: op = Opcode::kRem; break;
          case BinaryOp::kBitAnd: op = Opcode::kAnd; break;
          case BinaryOp::kBitOr: op = Opcode::kOr; break;
          case BinaryOp::kBitXor: op = Opcode::kXor; break;
          case BinaryOp::kShl: op = Opcode::kShl; break;
          case BinaryOp::kShr: op = Opcode::kShr; break;
          default:
            error(b.loc, "internal: unhandled binary operator");
            return {materializeZero(Type::kInt), Type::kInt};
        }
        int dst = newReg();
        emit(isa::makeBinary(op, dst, lhs.reg, rhs.reg));
        return {dst, result_type};
    }

    Value
    genAssign(const lang::AssignExpr &a)
    {
        auto lv = genLValue(*a.target);
        if (!lv)
            return {materializeZero(Type::kInt), Type::kInt};
        Value value;
        if (a.compound) {
            Value current = readLValue(*lv);
            Value rhs = genExpr(*a.value);
            if (rhs.type == Type::kVoid) {
                error(a.loc, "void value used in assignment");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            bool fp = current.type == Type::kFloat ||
                      rhs.type == Type::kFloat;
            if (fp && (*a.compound == BinaryOp::kRem)) {
                error(a.loc, "%= applied to float operands");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            Type op_type = fp ? Type::kFloat : Type::kInt;
            current = convert(current, op_type, a.loc);
            rhs = convert(rhs, op_type, a.loc);
            Opcode op;
            switch (*a.compound) {
              case BinaryOp::kAdd: op = fp ? Opcode::kFAdd : Opcode::kAdd; break;
              case BinaryOp::kSub: op = fp ? Opcode::kFSub : Opcode::kSub; break;
              case BinaryOp::kMul: op = fp ? Opcode::kFMul : Opcode::kMul; break;
              case BinaryOp::kDiv: op = fp ? Opcode::kFDiv : Opcode::kDiv; break;
              case BinaryOp::kRem: op = Opcode::kRem; break;
              default:
                error(a.loc, "internal: unhandled compound operator");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            int dst = newReg();
            emit(isa::makeBinary(op, dst, current.reg, rhs.reg));
            value = {dst, op_type};
        } else {
            value = genExpr(*a.value);
        }
        value = convert(value, lv->type, a.loc);
        writeLValue(*lv, value.reg);
        return value;
    }

    /** Purity/cost test for lowering ?: to SELECT: both arms will execute
     *  unconditionally, so they must be side-effect free, trap free (no
     *  loads, divides) and cheap. */
    bool
    selectable(const Expr &e, int *budget) const
    {
        if (--(*budget) < 0)
            return false;
        switch (e.kind) {
          case ExprKind::kIntLit:
          case ExprKind::kFloatLit:
            return true;
          case ExprKind::kVarRef: {
            const auto &v = static_cast<const lang::VarRef &>(e);
            if (lookupLocal(v.name))
                return true;
            auto git = globals_.find(v.name);
            return git != globals_.end() && !git->second.is_array;
          }
          case ExprKind::kUnary: {
            const auto &u = static_cast<const lang::UnaryExpr &>(e);
            if (u.op == UnaryOp::kNeg || u.op == UnaryOp::kBitNot)
                return selectable(*u.operand, budget);
            return false;
          }
          case ExprKind::kBinary: {
            const auto &b = static_cast<const lang::BinaryExpr &>(e);
            switch (b.op) {
              case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
              case BinaryOp::kBitAnd: case BinaryOp::kBitOr:
              case BinaryOp::kBitXor: case BinaryOp::kShl: case BinaryOp::kShr:
              case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
              case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
                return selectable(*b.lhs, budget) && selectable(*b.rhs, budget);
              default:
                return false;
            }
          }
          default:
            return false;
        }
    }

    Value
    genTernary(const lang::TernaryExpr &t)
    {
        int budget = 6;
        if (options_.use_select && selectable(*t.then_value, &budget) &&
            selectable(*t.else_value, &budget)) {
            Value cond = genExpr(*t.cond);
            int cond_reg = condReg(cond, t.loc);
            Value a = genExpr(*t.then_value);
            Value b = genExpr(*t.else_value);
            bool fp = a.type == Type::kFloat || b.type == Type::kFloat;
            Type rt = fp ? Type::kFloat : Type::kInt;
            a = convert(a, rt, t.loc);
            b = convert(b, rt, t.loc);
            int dst = newReg();
            emit(isa::makeSelect(dst, cond_reg, a.reg, b.reg));
            return {dst, rt};
        }

        // Branch diamond. The result type must be computed up front; we
        // cheat slightly by generating the then-arm first and converting
        // the else-arm to its type (int unless either arm is float, which
        // we cannot know before generating — so convert at the join).
        int l_then = newLabel();
        int l_else = newLabel();
        int l_end = newLabel();
        int result = newReg();
        genCond(*t.cond, l_then, l_else, BranchKind::kTernary);
        bind(l_then);
        Value a = genExpr(*t.then_value);
        // Provisional: move, then patch type below via convert on both arms.
        // To keep single-pass generation simple, the result type is the
        // type of the then-arm; the else-arm converts to it.
        Type rt = a.type == Type::kVoid ? Type::kInt : a.type;
        a = convert(a, rt, t.loc);
        emit(isa::makeUnary(Opcode::kMov, result, a.reg));
        emitJump(l_end);
        bind(l_else);
        Value b = convert(genExpr(*t.else_value), rt, t.loc);
        emit(isa::makeUnary(Opcode::kMov, result, b.reg));
        bind(l_end);
        return {result, rt};
    }

    Value
    genCall(const lang::CallExpr &call)
    {
        auto bit = kBuiltins.find(call.callee);
        if (bit != kBuiltins.end())
            return genBuiltin(call, bit->second);

        auto it = functions_.find(call.callee);
        if (it == functions_.end()) {
            error(call.loc, "call to undeclared function '" + call.callee +
                            "'");
            return {materializeZero(Type::kInt), Type::kInt};
        }
        const FuncInfo &fn = it->second;
        if (call.args.size() != fn.param_types.size()) {
            error(call.loc,
                  strPrintf("'%s' expects %zu arguments, got %zu",
                            call.callee.c_str(), fn.param_types.size(),
                            call.args.size()));
            return {materializeZero(Type::kInt), Type::kInt};
        }
        // Evaluate every argument fully (nested calls complete their own
        // arg staging), then stage contiguously so the VM's pending-args
        // buffer cannot be clobbered.
        std::vector<int> arg_regs;
        arg_regs.reserve(call.args.size());
        for (size_t i = 0; i < call.args.size(); ++i) {
            Value v = convert(genExpr(*call.args[i]), fn.param_types[i],
                              call.args[i]->loc);
            arg_regs.push_back(v.reg);
        }
        for (size_t i = 0; i < arg_regs.size(); ++i)
            emit(isa::makeArg(static_cast<int>(i), arg_regs[i]));
        if (fn.return_type == Type::kVoid) {
            emit(isa::makeCall(-1, fn.index));
            return {-1, Type::kVoid};
        }
        int dst = newReg();
        emit(isa::makeCall(dst, fn.index));
        return {dst, fn.return_type};
    }

    Value
    genBuiltin(const lang::CallExpr &call, Builtin builtin)
    {
        auto expect_args = [&](size_t n) {
            if (call.args.size() != n) {
                error(call.loc,
                      strPrintf("'%s' expects %zu argument(s), got %zu",
                                call.callee.c_str(), n, call.args.size()));
                return false;
            }
            return true;
        };

        switch (builtin) {
          case Builtin::kGetc: {
            if (!expect_args(0))
                return {materializeZero(Type::kInt), Type::kInt};
            int dst = newReg();
            emit({Opcode::kGetc, dst, -1, -1, -1, 0});
            return {dst, Type::kInt};
          }
          case Builtin::kPutc: {
            if (!expect_args(1))
                return {materializeZero(Type::kInt), Type::kInt};
            Value v = convert(genExpr(*call.args[0]), Type::kInt, call.loc);
            emit({Opcode::kPutc, v.reg, -1, -1, -1, 0});
            return {v.reg, Type::kInt};
          }
          case Builtin::kPutF: {
            if (!expect_args(1))
                return {-1, Type::kVoid};
            Value v = convert(genExpr(*call.args[0]), Type::kFloat, call.loc);
            emit({Opcode::kPutF, v.reg, -1, -1, -1, 0});
            return {-1, Type::kVoid};
          }
          case Builtin::kPuts: {
            if (!expect_args(1))
                return {-1, Type::kVoid};
            if (call.args[0]->kind != ExprKind::kStringLit) {
                error(call.loc, "puts() requires a string literal");
                return {-1, Type::kVoid};
            }
            const auto &lit =
                static_cast<const lang::StringLit &>(*call.args[0]);
            int reg = newReg();
            for (char c : lit.value) {
                emit(isa::makeMovI(reg, static_cast<unsigned char>(c)));
                emit({Opcode::kPutc, reg, -1, -1, -1, 0});
            }
            return {-1, Type::kVoid};
          }
          case Builtin::kHalt:
            if (expect_args(0))
                emit({Opcode::kHalt, -1, -1, -1, -1, 0});
            return {-1, Type::kVoid};
          case Builtin::kItoF: {
            if (!expect_args(1))
                return {materializeZero(Type::kFloat), Type::kFloat};
            Value v = convert(genExpr(*call.args[0]), Type::kInt, call.loc);
            int dst = newReg();
            emit(isa::makeUnary(Opcode::kItoF, dst, v.reg));
            return {dst, Type::kFloat};
          }
          case Builtin::kFtoI: {
            if (!expect_args(1))
                return {materializeZero(Type::kInt), Type::kInt};
            Value v = convert(genExpr(*call.args[0]), Type::kFloat, call.loc);
            int dst = newReg();
            emit(isa::makeUnary(Opcode::kFtoI, dst, v.reg));
            return {dst, Type::kInt};
          }
          case Builtin::kSqrt: case Builtin::kExp: case Builtin::kLog:
          case Builtin::kSin: case Builtin::kCos: case Builtin::kFAbs: {
            if (!expect_args(1))
                return {materializeZero(Type::kFloat), Type::kFloat};
            Value v = convert(genExpr(*call.args[0]), Type::kFloat, call.loc);
            Opcode op;
            switch (builtin) {
              case Builtin::kSqrt: op = Opcode::kFSqrt; break;
              case Builtin::kExp: op = Opcode::kFExp; break;
              case Builtin::kLog: op = Opcode::kFLog; break;
              case Builtin::kSin: op = Opcode::kFSin; break;
              case Builtin::kCos: op = Opcode::kFCos; break;
              default: op = Opcode::kFAbs; break;
            }
            int dst = newReg();
            emit(isa::makeUnary(op, dst, v.reg));
            return {dst, Type::kFloat};
          }
          case Builtin::kICall: {
            if (call.args.empty()) {
                error(call.loc, "icall() requires a function value");
                return {materializeZero(Type::kInt), Type::kInt};
            }
            Value target = convert(genExpr(*call.args[0]), Type::kInt,
                                   call.loc);
            std::vector<int> arg_regs;
            for (size_t i = 1; i < call.args.size(); ++i) {
                Value v = genExpr(*call.args[i]);
                if (v.type == Type::kVoid) {
                    error(call.args[i]->loc, "void argument in icall");
                    v = {materializeZero(Type::kInt), Type::kInt};
                }
                arg_regs.push_back(v.reg);
            }
            for (size_t i = 0; i < arg_regs.size(); ++i)
                emit(isa::makeArg(static_cast<int>(i), arg_regs[i]));
            int dst = newReg();
            emit(isa::makeICall(dst, target.reg));
            return {dst, Type::kInt};
          }
        }
        error(call.loc, "internal: unhandled builtin");
        return {materializeZero(Type::kInt), Type::kInt};
    }

    // --- statements ----------------------------------------------------------

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::kBlock: {
            const auto &block = static_cast<const lang::BlockStmt &>(s);
            pushScope();
            for (const auto &stmt : block.stmts)
                genStmt(*stmt);
            popScope();
            return;
          }
          case StmtKind::kExpr:
            genExpr(*static_cast<const lang::ExprStmt &>(s).expr);
            return;
          case StmtKind::kVarDecl: {
            const auto &decl = static_cast<const lang::VarDeclStmt &>(s);
            for (const auto &d : decl.vars) {
                int reg = newReg();
                if (!declareLocal(d.name, LocalInfo{reg, decl.type})) {
                    error(d.loc, "redefinition of '" + d.name + "'");
                    continue;
                }
                if (d.init) {
                    Value v = convert(genExpr(*d.init), decl.type, d.loc);
                    emit(isa::makeUnary(Opcode::kMov, reg, v.reg));
                } else {
                    // Deterministic zero initialization.
                    if (decl.type == Type::kFloat)
                        emit(isa::makeMovF(reg, 0.0));
                    else
                        emit(isa::makeMovI(reg, 0));
                }
            }
            return;
          }
          case StmtKind::kIf: {
            const auto &stmt = static_cast<const lang::IfStmt &>(s);
            int l_then = newLabel();
            int l_else = newLabel();
            int l_end = newLabel();
            genCond(*stmt.cond, l_then, l_else, BranchKind::kIf);
            bind(l_then);
            genStmt(*stmt.then_stmt);
            if (stmt.else_stmt) {
                emitJump(l_end);
                bind(l_else);
                genStmt(*stmt.else_stmt);
                bind(l_end);
            } else {
                bind(l_else);
                bind(l_end);
            }
            return;
          }
          case StmtKind::kWhile: {
            const auto &stmt = static_cast<const lang::WhileStmt &>(s);
            // Rotated loop: the test lives at the bottom, so the loop
            // branch is backward-taken — the shape the heuristic
            // predictors key on.
            int l_body = newLabel();
            int l_test = newLabel();
            int l_exit = newLabel();
            emitJump(l_test);
            bind(l_body);
            break_labels_.push_back(l_exit);
            continue_labels_.push_back(l_test);
            genStmt(*stmt.body);
            continue_labels_.pop_back();
            break_labels_.pop_back();
            bind(l_test);
            genCond(*stmt.cond, l_body, l_exit, BranchKind::kLoop);
            bind(l_exit);
            return;
          }
          case StmtKind::kDoWhile: {
            const auto &stmt = static_cast<const lang::DoWhileStmt &>(s);
            int l_body = newLabel();
            int l_test = newLabel();
            int l_exit = newLabel();
            bind(l_body);
            break_labels_.push_back(l_exit);
            continue_labels_.push_back(l_test);
            genStmt(*stmt.body);
            continue_labels_.pop_back();
            break_labels_.pop_back();
            bind(l_test);
            genCond(*stmt.cond, l_body, l_exit, BranchKind::kLoop);
            bind(l_exit);
            return;
          }
          case StmtKind::kFor: {
            const auto &stmt = static_cast<const lang::ForStmt &>(s);
            pushScope(); // for-init declarations scope to the loop
            if (stmt.init)
                genStmt(*stmt.init);
            int l_body = newLabel();
            int l_step = newLabel();
            int l_test = newLabel();
            int l_exit = newLabel();
            emitJump(l_test);
            bind(l_body);
            break_labels_.push_back(l_exit);
            continue_labels_.push_back(l_step);
            genStmt(*stmt.body);
            continue_labels_.pop_back();
            break_labels_.pop_back();
            bind(l_step);
            if (stmt.step)
                genExpr(*stmt.step);
            bind(l_test);
            if (stmt.cond)
                genCond(*stmt.cond, l_body, l_exit, BranchKind::kLoop);
            else
                emitJump(l_body);
            bind(l_exit);
            popScope();
            return;
          }
          case StmtKind::kSwitch:
            genSwitch(static_cast<const lang::SwitchStmt &>(s));
            return;
          case StmtKind::kBreak:
            if (break_labels_.empty())
                error(s.loc, "'break' outside of loop or switch");
            else
                emitJump(break_labels_.back());
            return;
          case StmtKind::kContinue:
            if (continue_labels_.empty())
                error(s.loc, "'continue' outside of loop");
            else
                emitJump(continue_labels_.back());
            return;
          case StmtKind::kReturn: {
            const auto &stmt = static_cast<const lang::ReturnStmt &>(s);
            if (cur_return_type_ == Type::kVoid) {
                if (stmt.value)
                    error(s.loc, "void function returns a value");
                emit(isa::makeRet(-1));
                return;
            }
            if (!stmt.value) {
                error(s.loc, "non-void function must return a value");
                emit(isa::makeRet(-1));
                return;
            }
            Value v = convert(genExpr(*stmt.value), cur_return_type_, s.loc);
            emit(isa::makeRet(v.reg));
            return;
          }
          case StmtKind::kEmpty:
            return;
        }
        error(s.loc, "internal: unhandled statement kind");
    }

    /**
     * Lower switch to a linear cascade of equality tests — the same
     * transformation the paper's compiler applied to multi-destination
     * branches, which it argues captures the needed information: if the
     * lowered branches are predictable, conditional branches were the
     * right encoding anyway.
     */
    void
    genSwitch(const lang::SwitchStmt &stmt)
    {
        Value v = convert(genExpr(*stmt.value), Type::kInt, stmt.loc);
        int l_end = newLabel();
        int l_default = l_end;

        std::vector<int> arm_labels;
        arm_labels.reserve(stmt.arms.size());
        for (const auto &arm : stmt.arms) {
            arm_labels.push_back(newLabel());
            if (arm.is_default)
                l_default = arm_labels.back();
        }

        // Dispatch cascade.
        for (size_t i = 0; i < stmt.arms.size(); ++i) {
            for (int64_t label_value : stmt.arms[i].labels) {
                int lit = newReg();
                emit(isa::makeMovI(lit, label_value));
                int cmp = newReg();
                emit(isa::makeBinary(Opcode::kCmpEq, cmp, v.reg, lit));
                int l_next = newLabel();
                emitBranch(cmp, arm_labels[i], l_next,
                           BranchKind::kSwitchCase, stmt.arms[i].loc,
                           Opcode::kCmpEq);
                bind(l_next);
            }
        }
        emitJump(l_default);

        // Arm bodies, in order, with C fallthrough.
        break_labels_.push_back(l_end);
        for (size_t i = 0; i < stmt.arms.size(); ++i) {
            bind(arm_labels[i]);
            pushScope();
            for (const auto &body_stmt : stmt.arms[i].body)
                genStmt(*body_stmt);
            popScope();
        }
        break_labels_.pop_back();
        bind(l_end);
    }

    // --- final assembly -------------------------------------------------------

    void
    finishProgram()
    {
        program_.memory_words = next_address_;
        program_.data_init = std::move(data_init_);
        int entry = -1;
        auto it = functions_.find("main");
        if (it == functions_.end()) {
            diags_.push_back("error: no main() function defined");
        } else if (!it->second.param_types.empty()) {
            diags_.push_back("error: main() must take no parameters");
        } else {
            entry = it->second.index;
        }
        program_.entry = entry;
    }

    const std::vector<const lang::Unit *> &units_;
    const CompileOptions &options_;

    isa::Program program_;
    std::vector<std::string> diags_;

    std::unordered_map<std::string, GlobalInfo> globals_;
    std::unordered_map<std::string, FuncInfo> functions_;
    int64_t next_address_ = 0;
    std::vector<isa::Program::DataInit> data_init_;

    // Per-function state.
    int cur_func_index_ = -1;
    Type cur_return_type_ = Type::kVoid;
    int num_regs_ = 0;
    std::vector<Instruction> code_;
    std::vector<int> labels_;
    std::vector<std::unordered_map<std::string, LocalInfo>> scopes_;
    std::vector<int> break_labels_;
    std::vector<int> continue_labels_;
};

} // namespace

isa::Program
generate(const std::vector<const lang::Unit *> &units,
         const CompileOptions &options)
{
    return CodeGen(units, options).run();
}

} // namespace ifprob

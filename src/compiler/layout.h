#ifndef IFPROB_COMPILER_LAYOUT_H
#define IFPROB_COMPILER_LAYOUT_H

#include "isa/program.h"
#include "predict/static_predictor.h"
#include "profile/profile_db.h"

namespace ifprob {

/**
 * Profile-guided code layout.
 *
 * The paper assumes an ILP compiler "can eliminate many of these
 * unconditional breaks in control by rearranging the static position of
 * the code". This pass does that: it reorders each function's basic
 * blocks along predictor-selected traces (hot paths become straight
 * lines), appends compensation jumps where a fallthrough successor
 * moved away, and re-threads/compacts so jumps to the next instruction
 * disappear.
 *
 * Branch site ids are preserved (layout never adds or removes
 * conditional branches), so profiles remain applicable; the sites'
 * backward/forward flags are recomputed for the new positions. The
 * program fingerprint changes.
 *
 * @returns the number of functions whose code actually moved.
 */
int layoutProgram(isa::Program &program,
                  const predict::StaticPredictor &predictor,
                  const profile::ProfileDb &profile);

} // namespace ifprob

#endif // IFPROB_COMPILER_LAYOUT_H

#include "compiler/inline.h"

#include <vector>

#include "compiler/passes.h"
#include "isa/instruction.h"

namespace ifprob {

using isa::Function;
using isa::Instruction;
using isa::Opcode;

namespace {

/** A callee is inlinable when it is small, makes no self-call, and is
 *  not the program entry. Calls to *other* functions inside the body
 *  are fine — they stay calls (and may inline in a later round). */
bool
inlinable(const isa::Program &program, int callee, int caller,
          const InlineOptions &options)
{
    if (callee == caller || callee == program.entry)
        return false;
    const Function &fn = program.functions[static_cast<size_t>(callee)];
    if (static_cast<int>(fn.code.size()) > options.max_callee_size)
        return false;
    for (const Instruction &insn : fn.code) {
        if (insn.op == Opcode::kCall && insn.b == callee)
            return false; // direct recursion
        if (insn.op == Opcode::kICall)
            return false; // could reach itself indirectly
    }
    return true;
}

/**
 * Expand one call: rebuild @p caller's code with the callee body
 * spliced over the kCall at @p call_pc. The preceding kArg run (the
 * code generator emits it contiguously) becomes moves into the
 * callee's remapped parameter registers.
 */
void
expandCall(Function &caller, int call_pc, const Function &callee)
{
    const Instruction call = caller.code[static_cast<size_t>(call_pc)];
    const int reg_base = caller.num_regs;
    caller.num_regs += callee.num_regs;
    const int dst = call.a;

    // Rewrite the kArg run feeding this call into parameter moves.
    {
        int arg_pc = call_pc - 1;
        while (arg_pc >= 0 &&
               caller.code[static_cast<size_t>(arg_pc)].op == Opcode::kArg) {
            Instruction &arg = caller.code[static_cast<size_t>(arg_pc)];
            arg = isa::makeUnary(Opcode::kMov, reg_base + arg.a, arg.b);
            --arg_pc;
        }
    }
    // No zero-init prologue is needed: minic's code generator writes
    // every register before reading it on every path (locals without
    // initializers get explicit zero moves), so a fresh-frame guarantee
    // is not load-bearing for inlined bodies.

    // Build the inlined body.
    std::vector<Instruction> body;
    body.reserve(callee.code.size() + 4);
    // First pass: compute per-callee-pc offsets in the expanded body
    // (returns expand to up to 2 instructions).
    std::vector<int> new_pos(callee.code.size() + 1, 0);
    {
        int pos = 0;
        for (size_t pc = 0; pc < callee.code.size(); ++pc) {
            new_pos[pc] = pos;
            const Instruction &insn = callee.code[pc];
            if (insn.op == Opcode::kRet)
                pos += (dst != -1) ? 2 : 1;
            else
                pos += 1;
        }
        new_pos[callee.code.size()] = pos;
    }
    const int body_len = new_pos[callee.code.size()];
    const int continuation = call_pc + body_len; // pc after the body

    const int prologue_len = 0;

    for (size_t pc = 0; pc < callee.code.size(); ++pc) {
        Instruction insn = callee.code[pc];
        // Remap register operands.
        auto remap = [&](int32_t &r) {
            if (r != -1)
                r += reg_base;
        };
        switch (insn.op) {
          case Opcode::kMovI: case Opcode::kMovF: case Opcode::kGetc:
            remap(insn.a);
            break;
          case Opcode::kMov:
            remap(insn.a);
            remap(insn.b);
            break;
          case Opcode::kLoad:
            remap(insn.a);
            if (insn.b != -1)
                remap(insn.b);
            break;
          case Opcode::kStore:
            remap(insn.a);
            if (insn.b != -1)
                remap(insn.b);
            break;
          case Opcode::kBr:
            remap(insn.a);
            insn.b = call_pc + prologue_len + new_pos[static_cast<size_t>(insn.b)];
            insn.c = call_pc + prologue_len + new_pos[static_cast<size_t>(insn.c)];
            body.push_back(insn);
            continue;
          case Opcode::kJmp:
            insn.a = call_pc + prologue_len + new_pos[static_cast<size_t>(insn.a)];
            body.push_back(insn);
            continue;
          case Opcode::kArg:
            remap(insn.b);
            break;
          case Opcode::kCall:
            if (insn.a != -1)
                remap(insn.a);
            break;
          case Opcode::kICall:
            if (insn.a != -1)
                remap(insn.a);
            remap(insn.b);
            break;
          case Opcode::kRet: {
            if (dst != -1) {
                if (insn.a != -1) {
                    body.push_back(isa::makeUnary(Opcode::kMov, dst,
                                                  insn.a + reg_base));
                } else {
                    body.push_back(isa::makeMovI(dst, 0));
                }
            }
            body.push_back(isa::makeJmp(continuation + prologue_len));
            continue;
          }
          case Opcode::kSelect:
            remap(insn.a);
            remap(insn.b);
            remap(insn.c);
            remap(insn.d);
            break;
          case Opcode::kPutc: case Opcode::kPutF:
            remap(insn.a);
            break;
          case Opcode::kHalt: case Opcode::kNop:
            break;
          default:
            // Three-address ALU forms.
            remap(insn.a);
            remap(insn.b);
            if (isa::isBinaryAlu(insn.op))
                remap(insn.c);
            break;
        }
        body.push_back(insn);
    }

    // Splice: prologue + body replace the single kCall instruction.
    const int delta = prologue_len + body_len - 1;
    std::vector<Instruction> out;
    out.reserve(caller.code.size() + static_cast<size_t>(delta));
    for (int pc = 0; pc < static_cast<int>(caller.code.size()); ++pc) {
        if (pc == call_pc) {
            out.insert(out.end(), body.begin(), body.end());
            continue;
        }
        Instruction insn = caller.code[static_cast<size_t>(pc)];
        // Shift caller control targets that point past the call site.
        if (insn.op == Opcode::kBr) {
            if (insn.b > call_pc)
                insn.b += delta;
            if (insn.c > call_pc)
                insn.c += delta;
        } else if (insn.op == Opcode::kJmp) {
            if (insn.a > call_pc)
                insn.a += delta;
        }
        out.push_back(insn);
    }
    caller.code = std::move(out);
}

} // namespace

int
inlineProgram(isa::Program &program, const InlineOptions &options)
{
    int total = 0;
    for (int round = 0; round < options.rounds; ++round) {
        int inlined_this_round = 0;
        for (size_t fi = 0; fi < program.functions.size(); ++fi) {
            Function &caller = program.functions[fi];
            // Scan repeatedly: each expansion shifts positions.
            bool changed = true;
            while (changed &&
                   static_cast<int>(caller.code.size()) <
                       options.max_caller_size) {
                changed = false;
                for (int pc = 0;
                     pc < static_cast<int>(caller.code.size()); ++pc) {
                    const Instruction &insn =
                        caller.code[static_cast<size_t>(pc)];
                    if (insn.op != Opcode::kCall)
                        continue;
                    if (!inlinable(program, insn.b, static_cast<int>(fi),
                                   options)) {
                        continue;
                    }
                    expandCall(caller, pc,
                               program.functions[static_cast<size_t>(
                                   insn.b)]);
                    ++inlined_this_round;
                    ++total;
                    changed = true;
                    break;
                }
            }
        }
        if (inlined_this_round == 0)
            break;
    }
    if (total > 0) {
        // Clean up the expansion residue (return-jumps to the next
        // instruction, result-move chains) with the site-safe passes,
        // so inlining actually removes the dynamic call overhead.
        for (auto &fn : program.functions) {
            for (int round = 0; round < 3; ++round) {
                bool changed = false;
                changed |= propagateCopies(fn);
                changed |= removeDeadWrites(fn);
                changed |= threadJumps(fn, /*fold_trivial_branches=*/false);
                changed |= compactCode(fn);
                if (!changed)
                    break;
            }
        }
    }
    program.validate();
    return total;
}

} // namespace ifprob

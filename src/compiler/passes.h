#ifndef IFPROB_COMPILER_PASSES_H
#define IFPROB_COMPILER_PASSES_H

#include "isa/program.h"

namespace ifprob {

/**
 * Classical intraprocedural optimization passes over compiled functions.
 *
 * Each pass returns true when it changed the code. The default pipeline
 * (see pipeline.cpp) runs the "safe" passes — those that never remove a
 * conditional branch site, so profile identities are preserved. The
 * dead-code pipeline additionally folds constant branches and removes
 * unreachable code, mirroring the global dead-code elimination the paper
 * had to disable (and whose dynamic cost its Table 1 quantifies).
 */

/**
 * Fold constant computations within basic blocks. When @p fold_branches
 * is set, conditional branches with a known condition become jumps
 * (this removes branch sites from execution and is only legal in the
 * dead-code pipeline).
 */
bool foldConstants(isa::Function &fn, bool fold_branches);

/** Forward-propagate register copies within basic blocks. */
bool propagateCopies(isa::Function &fn);

/**
 * Retarget branches/jumps through jump chains and turn jumps to the next
 * instruction into nops. When @p fold_trivial_branches is set, a branch
 * whose two targets coincide becomes a jump (dead-code pipeline only).
 */
bool threadJumps(isa::Function &fn, bool fold_trivial_branches);

/** Replace instructions unreachable from the function entry with nops. */
bool removeUnreachable(isa::Function &fn);

/** Remove side-effect-free writes to registers that are never read. */
bool removeDeadWrites(isa::Function &fn);

/** Delete nop instructions and remap control-flow targets. */
bool compactCode(isa::Function &fn);

/**
 * Whole-program promotion of read-only scalar globals: a scalar that no
 * instruction in the program ever stores to is replaced, at each load,
 * by its initial value. This is what lets dead-code elimination fold
 * branches guarded by compiled-in-but-disabled configuration flags —
 * the dominant source of the dynamic dead code the paper's Table 1
 * measures. Only run in the dead-code pipeline.
 */
bool promoteReadOnlyGlobals(isa::Program &program);

/**
 * Renumber branch sites after dead-code elimination: sites whose kBr was
 * deleted are dropped and the survivors are renumbered densely in
 * (function, pc) order. Changes the program fingerprint.
 */
void compactBranchSites(isa::Program &program);

/** Run the configured pipelines over every function of @p program. */
void optimizeProgram(isa::Program &program, bool optimize,
                     bool eliminate_dead_code);

} // namespace ifprob

#endif // IFPROB_COMPILER_PASSES_H

#include "compiler/layout.h"

#include <algorithm>

#include "compiler/passes.h"
#include "ilp/trace.h"
#include "isa/cfg.h"

namespace ifprob {

using isa::BlockGraph;
using isa::Instruction;
using isa::Opcode;

namespace {

/** New block order for one function: hot traces first, entry block
 *  forced to position 0. */
std::vector<int>
blockOrder(const ilp::TraceSet &traces, int function, int num_blocks)
{
    // Traces of this function, hottest first (selectTraces already seeds
    // in weight order, but sort defensively).
    std::vector<const ilp::Trace *> own;
    for (const auto &t : traces.traces) {
        if (t.function == function)
            own.push_back(&t);
    }
    std::stable_sort(own.begin(), own.end(),
                     [](const ilp::Trace *a, const ilp::Trace *b) {
                         return a->weight > b->weight;
                     });

    std::vector<int> order;
    order.reserve(static_cast<size_t>(num_blocks));
    // Execution starts at pc 0, so block 0 must lead the layout: emit
    // its trace first, rotated to start at block 0 (any blocks grown
    // before the entry are placed right after the trace tail).
    for (const ilp::Trace *t : own) {
        auto entry_pos = std::find(t->blocks.begin(), t->blocks.end(), 0);
        if (entry_pos == t->blocks.end())
            continue;
        order.insert(order.end(), entry_pos, t->blocks.end());
        order.insert(order.end(), t->blocks.begin(), entry_pos);
        break;
    }
    for (const ilp::Trace *t : own) {
        if (std::find(t->blocks.begin(), t->blocks.end(), 0) !=
            t->blocks.end()) {
            continue; // already emitted
        }
        order.insert(order.end(), t->blocks.begin(), t->blocks.end());
    }
    return order;
}

bool
layoutFunction(isa::Function &function, const ilp::TraceSet &traces,
               int function_index, std::vector<isa::BranchSite> &sites)
{
    BlockGraph graph(function);
    const int n = graph.numBlocks();
    if (n <= 1)
        return false;
    std::vector<int> order = blockOrder(traces, function_index, n);
    if (static_cast<int>(order.size()) != n)
        return false; // traces didn't cover the function; leave as-is

    bool identity = true;
    for (int i = 0; i < n; ++i)
        identity = identity && order[static_cast<size_t>(i)] == i;
    if (identity)
        return false;

    // A block needs a compensation jump when it falls through (ends in
    // a non-control instruction) — its successor may move.
    auto falls_through = [&](int b) {
        const Instruction &last =
            function.code[static_cast<size_t>(graph.end(b) - 1)];
        switch (last.op) {
          case Opcode::kBr: case Opcode::kJmp: case Opcode::kRet:
          case Opcode::kHalt:
            return false;
          default:
            return graph.end(b) < static_cast<int>(function.code.size());
        }
    };

    // First pass: new start pc of every block (with room for jumps).
    std::vector<int> new_start(static_cast<size_t>(n), 0);
    std::vector<int> position_of(static_cast<size_t>(n), 0);
    int pc = 0;
    for (int i = 0; i < n; ++i) {
        int b = order[static_cast<size_t>(i)];
        position_of[static_cast<size_t>(b)] = i;
        new_start[static_cast<size_t>(b)] = pc;
        pc += graph.size(b);
        if (falls_through(b)) {
            int succ = graph.blockOf(graph.end(b));
            bool succ_is_next =
                i + 1 < n && order[static_cast<size_t>(i + 1)] == succ;
            if (!succ_is_next)
                pc += 1; // compensation jump
        }
    }

    // Second pass: emit.
    std::vector<Instruction> out;
    out.reserve(static_cast<size_t>(pc));
    for (int i = 0; i < n; ++i) {
        int b = order[static_cast<size_t>(i)];
        for (int old_pc = graph.start(b); old_pc < graph.end(b);
             ++old_pc) {
            Instruction insn = function.code[static_cast<size_t>(old_pc)];
            if (insn.op == Opcode::kBr) {
                insn.b = new_start[static_cast<size_t>(
                    graph.blockOf(insn.b))];
                insn.c = new_start[static_cast<size_t>(
                    graph.blockOf(insn.c))];
            } else if (insn.op == Opcode::kJmp) {
                insn.a = new_start[static_cast<size_t>(
                    graph.blockOf(insn.a))];
            }
            out.push_back(insn);
        }
        if (falls_through(b)) {
            int succ = graph.blockOf(graph.end(b));
            bool succ_is_next =
                i + 1 < n && order[static_cast<size_t>(i + 1)] == succ;
            if (!succ_is_next) {
                out.push_back(isa::makeJmp(
                    new_start[static_cast<size_t>(succ)]));
            }
        }
    }
    function.code = std::move(out);

    // Clean up jumps the new order made redundant, then refresh the
    // loop-shape flags for the new positions.
    threadJumps(function, /*fold_trivial_branches=*/false);
    compactCode(function);
    for (size_t p = 0; p < function.code.size(); ++p) {
        const Instruction &insn = function.code[p];
        if (insn.op == Opcode::kBr) {
            sites[static_cast<size_t>(insn.imm)].backward =
                insn.b <= static_cast<int>(p);
        }
    }
    return true;
}

} // namespace

int
layoutProgram(isa::Program &program,
              const predict::StaticPredictor &predictor,
              const profile::ProfileDb &profile)
{
    ilp::TraceSet traces = ilp::selectTraces(program, predictor, profile);
    int changed = 0;
    for (size_t fi = 0; fi < program.functions.size(); ++fi) {
        if (layoutFunction(program.functions[fi], traces,
                           static_cast<int>(fi), program.branch_sites)) {
            ++changed;
        }
    }
    program.validate();
    return changed;
}

} // namespace ifprob

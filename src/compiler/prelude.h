#ifndef IFPROB_COMPILER_PRELUDE_H
#define IFPROB_COMPILER_PRELUDE_H

#include <string_view>

namespace ifprob {

/**
 * The minic runtime prelude: formatted integer/float input and output and
 * small numeric helpers, written in minic itself so that the character
 * parsing/formatting loops contribute realistic branch behaviour to every
 * workload (exactly as libc's atoi/printf did for the paper's C programs).
 *
 * Provided functions:
 *   int   ngetc()        — getc with one-character pushback
 *   void  ungetch(int c) — push a character back
 *   int   geti()         — parse a (possibly signed) decimal integer,
 *                          skipping whitespace and commas; sets geti_eof
 *   float getf()         — parse a decimal floating-point number with
 *                          optional fraction and exponent; sets geti_eof
 *   void  puti(int n)    — print a decimal integer
 *   int   imin/imax(int, int), float fmin2/fmax2(float, float)
 *
 * Globals: int geti_eof — set to 1 when geti/getf hits end of input.
 */
std::string_view preludeSource();

} // namespace ifprob

#endif // IFPROB_COMPILER_PRELUDE_H

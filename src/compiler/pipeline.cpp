#include "compiler/pipeline.h"

#include "compiler/codegen.h"
#include "compiler/passes.h"
#include "compiler/prelude.h"
#include "lang/parser.h"

namespace ifprob {

isa::Program
compile(std::string_view source, const CompileOptions &options)
{
    lang::Unit prelude_unit;
    if (options.include_prelude)
        prelude_unit = lang::parse(preludeSource());
    lang::Unit user_unit = lang::parse(source);

    std::vector<const lang::Unit *> units;
    if (options.include_prelude)
        units.push_back(&prelude_unit);
    units.push_back(&user_unit);

    isa::Program program = generate(units, options);
    optimizeProgram(program, options.optimize, options.eliminate_dead_code);
    program.validate();
    return program;
}

} // namespace ifprob

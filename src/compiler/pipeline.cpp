#include "compiler/pipeline.h"

#include "compiler/codegen.h"
#include "compiler/passes.h"
#include "compiler/prelude.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ifprob {

isa::Program
compile(std::string_view source, const CompileOptions &options)
{
    obs::ScopedSpan compile_span("compile", "compiler");
    if (compile_span.active())
        compile_span.arg("source_bytes",
                         static_cast<int64_t>(source.size()));
    const int64_t t0 = obs::nowMicros();

    lang::Unit prelude_unit;
    lang::Unit user_unit;
    {
        obs::ScopedSpan span("parse", "compiler");
        if (options.include_prelude)
            prelude_unit = lang::parse(preludeSource());
        user_unit = lang::parse(source);
        obs::counter("compiler.parse_micros").add(obs::nowMicros() - t0);
    }

    std::vector<const lang::Unit *> units;
    if (options.include_prelude)
        units.push_back(&prelude_unit);
    units.push_back(&user_unit);

    isa::Program program;
    {
        obs::ScopedSpan span("codegen", "compiler");
        const int64_t t = obs::nowMicros();
        program = generate(units, options);
        obs::counter("compiler.codegen_micros").add(obs::nowMicros() - t);
        if (span.active())
            span.arg("insns", static_cast<int64_t>(program.staticSize()));
    }

    const int64_t before_opt = static_cast<int64_t>(program.staticSize());
    optimizeProgram(program, options.optimize, options.eliminate_dead_code);

    {
        obs::ScopedSpan span("validate", "compiler");
        program.validate();
    }

    const int64_t insns = static_cast<int64_t>(program.staticSize());
    obs::counter("compiler.compiles").add(1);
    obs::counter("compiler.insns_emitted").add(insns);
    obs::counter("compiler.insns_optimized_away").add(before_opt - insns);
    obs::histogram("compiler.compile_micros").record(obs::nowMicros() - t0);
    if (compile_span.active())
        compile_span.arg("insns", insns);
    return program;
}

} // namespace ifprob

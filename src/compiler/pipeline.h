#ifndef IFPROB_COMPILER_PIPELINE_H
#define IFPROB_COMPILER_PIPELINE_H

#include <string_view>

#include "compiler/options.h"
#include "isa/program.h"

namespace ifprob {

/**
 * Compile minic source text to an executable isa::Program.
 *
 * Runs: prelude parse (unless disabled) -> user parse -> code generation
 * (name resolution + type checking) -> optimization pipelines per the
 * options -> structural validation.
 *
 * Throws CompileError on invalid source, Error on internal invariant
 * violations.
 */
isa::Program compile(std::string_view source,
                     const CompileOptions &options = {});

} // namespace ifprob

#endif // IFPROB_COMPILER_PIPELINE_H

#ifndef IFPROB_COMPILER_OPTIONS_H
#define IFPROB_COMPILER_OPTIONS_H

namespace ifprob {

/**
 * Compilation controls.
 *
 * The defaults mirror the paper's experimental configuration: classical
 * intraprocedural optimizations enabled, but global dead-code elimination
 * disabled so that the static branch sites (and thus profile identities)
 * are not perturbed — the paper had to run this way to keep IFPROBBER and
 * MFPixie branch counts synchronized, and measured the cost in its Table 1.
 */
struct CompileOptions
{
    /** Classical optimizations: constant folding, copy propagation,
     *  jump threading. Never removes or folds conditional branches. */
    bool optimize = true;

    /**
     * Global dead-code elimination: folds conditional branches with
     * constant outcome to jumps, removes unreachable code and dead
     * register writes, and renumbers the surviving branch sites.
     * Profiles do not transfer between images compiled with different
     * values of this flag (the fingerprint changes).
     */
    bool eliminate_dead_code = false;

    /**
     * Lower simple `?:` expressions (both arms pure and cheap) to the
     * SELECT operation instead of a branch diamond, as the Trace compiler
     * front ends did (paper footnote 2).
     */
    bool use_select = true;

    /** Include the minic runtime prelude (puti/geti/getf/...). */
    bool include_prelude = true;
};

} // namespace ifprob

#endif // IFPROB_COMPILER_OPTIONS_H

#include "compiler/passes.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "isa/alu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace ifprob {

using isa::Function;
using isa::Instruction;
using isa::Opcode;

namespace {

/** Apply @p fn to every register-operand *read* by @p insn. The callback
 *  receives a mutable reference so passes can rewrite uses in place. */
template <typename F>
void
forEachUse(Instruction &insn, F &&fn)
{
    switch (insn.op) {
      case Opcode::kMovI: case Opcode::kMovF: case Opcode::kGetc:
      case Opcode::kHalt: case Opcode::kNop: case Opcode::kJmp:
      case Opcode::kCall:
        return;
      case Opcode::kMov:
        fn(insn.b);
        return;
      case Opcode::kLoad:
        if (insn.b != -1)
            fn(insn.b);
        return;
      case Opcode::kStore:
        fn(insn.a);
        if (insn.b != -1)
            fn(insn.b);
        return;
      case Opcode::kBr:
        fn(insn.a);
        return;
      case Opcode::kArg:
        fn(insn.b);
        return;
      case Opcode::kICall:
        fn(insn.b);
        return;
      case Opcode::kRet:
        if (insn.a != -1)
            fn(insn.a);
        return;
      case Opcode::kSelect:
        fn(insn.b);
        fn(insn.c);
        fn(insn.d);
        return;
      case Opcode::kPutc: case Opcode::kPutF:
        fn(insn.a);
        return;
      default:
        if (isBinaryAlu(insn.op)) {
            fn(insn.b);
            fn(insn.c);
        } else if (isUnaryAlu(insn.op)) {
            fn(insn.b);
        }
        return;
    }
}

/** Register written by @p insn, or -1. Covers calls with a result. */
int
writtenReg(const Instruction &insn)
{
    if (isa::writesDst(insn.op))
        return insn.a;
    if ((insn.op == Opcode::kCall || insn.op == Opcode::kICall) &&
        insn.a != -1) {
        return insn.a;
    }
    return -1;
}

/** Pure register write: safe to delete when the destination is dead. */
bool
isRemovableWrite(const Instruction &insn)
{
    switch (insn.op) {
      case Opcode::kMovI: case Opcode::kMovF: case Opcode::kMov:
      case Opcode::kLoad: case Opcode::kSelect:
        return true;
      default:
        return isBinaryAlu(insn.op) || isUnaryAlu(insn.op);
    }
}

/** Leader flags for basic-block analysis. */
std::vector<bool>
computeLeaders(const Function &fn)
{
    const size_t n = fn.code.size();
    std::vector<bool> leader(n, false);
    if (n == 0)
        return leader;
    leader[0] = true;
    for (size_t pc = 0; pc < n; ++pc) {
        const Instruction &insn = fn.code[pc];
        switch (insn.op) {
          case Opcode::kBr:
            leader[static_cast<size_t>(insn.b)] = true;
            leader[static_cast<size_t>(insn.c)] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          case Opcode::kJmp:
            leader[static_cast<size_t>(insn.a)] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          case Opcode::kRet:
          case Opcode::kHalt:
            if (pc + 1 < n)
                leader[pc + 1] = true;
            break;
          default:
            break;
        }
    }
    return leader;
}

/** Successor pcs of the instruction at @p pc (for reachability/liveness). */
void
successors(const Function &fn, size_t pc, std::vector<int> &out)
{
    out.clear();
    const Instruction &insn = fn.code[pc];
    switch (insn.op) {
      case Opcode::kBr:
        out.push_back(insn.b);
        out.push_back(insn.c);
        return;
      case Opcode::kJmp:
        out.push_back(insn.a);
        return;
      case Opcode::kRet:
      case Opcode::kHalt:
        return;
      default:
        if (pc + 1 < fn.code.size())
            out.push_back(static_cast<int>(pc + 1));
        return;
    }
}

} // namespace

bool
foldConstants(Function &fn, bool fold_branches)
{
    bool changed = false;
    std::vector<bool> leader = computeLeaders(fn);
    // Known constant bit-pattern per register, valid within one block.
    std::vector<std::optional<int64_t>> known(
        static_cast<size_t>(fn.num_regs));

    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (leader[pc])
            std::fill(known.begin(), known.end(), std::nullopt);
        Instruction &insn = fn.code[pc];
        switch (insn.op) {
          case Opcode::kMovI:
          case Opcode::kMovF:
            known[static_cast<size_t>(insn.a)] = insn.imm;
            continue;
          case Opcode::kMov: {
            auto v = known[static_cast<size_t>(insn.b)];
            known[static_cast<size_t>(insn.a)] = v;
            continue;
          }
          case Opcode::kSelect: {
            auto cond = known[static_cast<size_t>(insn.b)];
            if (cond) {
                int src = *cond != 0 ? insn.c : insn.d;
                insn = isa::makeUnary(Opcode::kMov, insn.a, src);
                known[static_cast<size_t>(insn.a)] =
                    known[static_cast<size_t>(src)];
                changed = true;
            } else {
                known[static_cast<size_t>(insn.a)] = std::nullopt;
            }
            continue;
          }
          case Opcode::kBr: {
            auto cond = known[static_cast<size_t>(insn.a)];
            if (cond && fold_branches) {
                insn = isa::makeJmp(*cond != 0 ? insn.b : insn.c);
                changed = true;
            }
            continue;
          }
          default:
            break;
        }

        if (isBinaryAlu(insn.op)) {
            auto x = known[static_cast<size_t>(insn.b)];
            auto y = known[static_cast<size_t>(insn.c)];
            if (x && y) {
                if (auto result = isa::evalBinaryAlu(insn.op, *x, *y)) {
                    // Integer ops get movi, float-valued ops get movf —
                    // identical semantics, clearer disassembly.
                    bool fp = insn.op >= Opcode::kFAdd &&
                              insn.op <= Opcode::kFDiv;
                    Instruction folded = fp
                        ? Instruction{Opcode::kMovF, insn.a, -1, -1, -1,
                                      *result}
                        : Instruction{Opcode::kMovI, insn.a, -1, -1, -1,
                                      *result};
                    insn = folded;
                    known[static_cast<size_t>(insn.a)] = *result;
                    changed = true;
                    continue;
                }
            }
            known[static_cast<size_t>(insn.a)] = std::nullopt;
            continue;
        }
        if (isUnaryAlu(insn.op)) {
            auto x = known[static_cast<size_t>(insn.b)];
            if (x) {
                if (auto result = isa::evalUnaryAlu(insn.op, *x)) {
                    bool fp = insn.op == Opcode::kFNeg ||
                              insn.op == Opcode::kFAbs ||
                              insn.op == Opcode::kFSqrt ||
                              insn.op == Opcode::kFExp ||
                              insn.op == Opcode::kFLog ||
                              insn.op == Opcode::kFSin ||
                              insn.op == Opcode::kFCos ||
                              insn.op == Opcode::kItoF;
                    insn = fp ? Instruction{Opcode::kMovF, insn.a, -1, -1, -1,
                                            *result}
                              : Instruction{Opcode::kMovI, insn.a, -1, -1, -1,
                                            *result};
                    known[static_cast<size_t>(insn.a)] = *result;
                    changed = true;
                    continue;
                }
            }
            known[static_cast<size_t>(insn.a)] = std::nullopt;
            continue;
        }

        int w = writtenReg(insn);
        if (w != -1)
            known[static_cast<size_t>(w)] = std::nullopt;
    }
    return changed;
}

bool
propagateCopies(Function &fn)
{
    bool changed = false;
    std::vector<bool> leader = computeLeaders(fn);

    struct Copy
    {
        int src = -1;
        uint64_t stamp = 0; ///< last_write of src when the copy was made
    };
    std::vector<Copy> copy_of(static_cast<size_t>(fn.num_regs));
    std::vector<uint64_t> last_write(static_cast<size_t>(fn.num_regs), 0);
    uint64_t clock = 0;

    auto reset = [&]() {
        std::fill(copy_of.begin(), copy_of.end(), Copy{});
        // last_write can persist: stamps only need to be unique.
    };

    auto resolve = [&](int reg) {
        // Follow the copy chain while each link is still valid.
        for (int depth = 0; depth < 8; ++depth) {
            const Copy &c = copy_of[static_cast<size_t>(reg)];
            if (c.src == -1 || last_write[static_cast<size_t>(c.src)] != c.stamp)
                return reg;
            reg = c.src;
        }
        return reg;
    };

    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (leader[pc])
            reset();
        Instruction &insn = fn.code[pc];

        forEachUse(insn, [&](int32_t &reg) {
            int resolved = resolve(reg);
            if (resolved != reg) {
                reg = resolved;
                changed = true;
            }
        });

        int w = writtenReg(insn);
        if (w != -1) {
            last_write[static_cast<size_t>(w)] = ++clock;
            if (insn.op == Opcode::kMov && insn.b != w) {
                copy_of[static_cast<size_t>(w)] =
                    Copy{insn.b, last_write[static_cast<size_t>(insn.b)]};
            } else {
                copy_of[static_cast<size_t>(w)] = Copy{};
            }
        }
    }
    return changed;
}

bool
threadJumps(Function &fn, bool fold_trivial_branches)
{
    bool changed = false;
    const int n = static_cast<int>(fn.code.size());

    auto finalTarget = [&](int t) {
        for (int depth = 0; depth < 64; ++depth) {
            if (t < 0 || t >= n)
                return t;
            const Instruction &insn = fn.code[static_cast<size_t>(t)];
            if (insn.op == Opcode::kNop) {
                // Fall through a nop (created by earlier threading).
                if (t + 1 >= n)
                    return t;
                t = t + 1;
                continue;
            }
            if (insn.op != Opcode::kJmp || insn.a == t)
                return t;
            t = insn.a;
        }
        return t;
    };

    for (int pc = 0; pc < n; ++pc) {
        Instruction &insn = fn.code[static_cast<size_t>(pc)];
        if (insn.op == Opcode::kJmp) {
            int t = finalTarget(insn.a);
            if (t != insn.a) {
                insn.a = t;
                changed = true;
            }
            if (insn.a == pc + 1) {
                insn = isa::makeNop();
                changed = true;
            }
        } else if (insn.op == Opcode::kBr) {
            int tb = finalTarget(insn.b);
            int tc = finalTarget(insn.c);
            if (tb != insn.b || tc != insn.c) {
                insn.b = tb;
                insn.c = tc;
                changed = true;
            }
            if (fold_trivial_branches && insn.b == insn.c) {
                insn = isa::makeJmp(insn.b);
                changed = true;
            }
        }
    }
    return changed;
}

bool
removeUnreachable(Function &fn)
{
    const size_t n = fn.code.size();
    std::vector<bool> reachable(n, false);
    std::vector<int> stack{0};
    std::vector<int> succs;
    while (!stack.empty()) {
        int pc = stack.back();
        stack.pop_back();
        if (pc < 0 || pc >= static_cast<int>(n) ||
            reachable[static_cast<size_t>(pc)]) {
            continue;
        }
        reachable[static_cast<size_t>(pc)] = true;
        successors(fn, static_cast<size_t>(pc), succs);
        for (int s : succs)
            stack.push_back(s);
    }
    bool changed = false;
    for (size_t pc = 0; pc < n; ++pc) {
        if (!reachable[pc] && fn.code[pc].op != Opcode::kNop) {
            fn.code[pc] = isa::makeNop();
            changed = true;
        }
    }
    return changed;
}

bool
removeDeadWrites(Function &fn)
{
    const size_t n = fn.code.size();
    if (n == 0 || fn.num_regs == 0)
        return false;
    const size_t words = (static_cast<size_t>(fn.num_regs) + 63) / 64;

    // Block structure.
    std::vector<bool> leader = computeLeaders(fn);
    std::vector<int> block_of(n, 0);
    std::vector<int> block_start, block_end; // [start, end)
    for (size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            if (!block_start.empty())
                block_end.push_back(static_cast<int>(pc));
            block_start.push_back(static_cast<int>(pc));
        }
        block_of[pc] = static_cast<int>(block_start.size()) - 1;
    }
    block_end.push_back(static_cast<int>(n));
    const size_t num_blocks = block_start.size();

    // Block successors.
    std::vector<std::vector<int>> block_succs(num_blocks);
    std::vector<int> succs;
    for (size_t b = 0; b < num_blocks; ++b) {
        size_t last = static_cast<size_t>(block_end[b]) - 1;
        successors(fn, last, succs);
        for (int s : succs)
            block_succs[b].push_back(block_of[static_cast<size_t>(s)]);
    }

    // Iterative backward liveness at block granularity.
    std::vector<uint64_t> live_in(num_blocks * words, 0);
    std::vector<uint64_t> live_out(num_blocks * words, 0);
    std::vector<uint64_t> scratch(words);

    auto set_bit = [](std::vector<uint64_t> &bits, size_t base, int reg) {
        bits[base + static_cast<size_t>(reg) / 64] |=
            1ull << (static_cast<size_t>(reg) % 64);
    };
    auto test_bit = [](const std::vector<uint64_t> &bits, size_t base,
                       int reg) {
        return (bits[base + static_cast<size_t>(reg) / 64] >>
                (static_cast<size_t>(reg) % 64)) & 1;
    };

    bool iterate = true;
    while (iterate) {
        iterate = false;
        for (size_t b_plus_1 = num_blocks; b_plus_1 > 0; --b_plus_1) {
            size_t b = b_plus_1 - 1;
            // live_out = union of successor live_in.
            std::fill(scratch.begin(), scratch.end(), 0);
            for (int s : block_succs[b]) {
                for (size_t w = 0; w < words; ++w)
                    scratch[w] |= live_in[static_cast<size_t>(s) * words + w];
            }
            for (size_t w = 0; w < words; ++w)
                live_out[b * words + w] = scratch[w];
            // Walk the block backward to get live_in.
            for (int pc = block_end[b] - 1; pc >= block_start[b]; --pc) {
                Instruction &insn = fn.code[static_cast<size_t>(pc)];
                int w = writtenReg(insn);
                if (w != -1) {
                    scratch[static_cast<size_t>(w) / 64] &=
                        ~(1ull << (static_cast<size_t>(w) % 64));
                }
                forEachUse(insn, [&](int32_t &reg) {
                    scratch[static_cast<size_t>(reg) / 64] |=
                        1ull << (static_cast<size_t>(reg) % 64);
                });
            }
            for (size_t w = 0; w < words; ++w) {
                if (live_in[b * words + w] != scratch[w]) {
                    live_in[b * words + w] = scratch[w];
                    iterate = true;
                }
            }
        }
    }

    // Deletion sweep: within each block, track liveness backward and drop
    // pure writes to dead registers.
    bool changed = false;
    std::vector<uint64_t> live(words);
    for (size_t b = 0; b < num_blocks; ++b) {
        for (size_t w = 0; w < words; ++w)
            live[w] = live_out[b * words + w];
        for (int pc = block_end[b] - 1; pc >= block_start[b]; --pc) {
            Instruction &insn = fn.code[static_cast<size_t>(pc)];
            int w = writtenReg(insn);
            bool write_live =
                w != -1 && test_bit(live, 0, w) != 0;
            if (w != -1 && !write_live && isRemovableWrite(insn)) {
                insn = isa::makeNop();
                changed = true;
                continue;
            }
            if (w != -1) {
                live[static_cast<size_t>(w) / 64] &=
                    ~(1ull << (static_cast<size_t>(w) % 64));
            }
            forEachUse(insn, [&](int32_t &reg) {
                set_bit(live, 0, reg);
            });
        }
    }
    return changed;
}

bool
compactCode(Function &fn)
{
    const size_t n = fn.code.size();
    std::vector<int> new_pc(n + 1, 0);
    int next = 0;
    for (size_t pc = 0; pc < n; ++pc) {
        new_pc[pc] = next;
        if (fn.code[pc].op != Opcode::kNop)
            ++next;
    }
    new_pc[n] = next;
    if (next == static_cast<int>(n))
        return false;

    std::vector<Instruction> out;
    out.reserve(static_cast<size_t>(next));
    for (size_t pc = 0; pc < n; ++pc) {
        Instruction insn = fn.code[pc];
        if (insn.op == Opcode::kNop)
            continue;
        if (insn.op == Opcode::kBr) {
            insn.b = new_pc[static_cast<size_t>(insn.b)];
            insn.c = new_pc[static_cast<size_t>(insn.c)];
        } else if (insn.op == Opcode::kJmp) {
            insn.a = new_pc[static_cast<size_t>(insn.a)];
        }
        out.push_back(insn);
    }
    if (out.empty())
        out.push_back(isa::makeRet(-1)); // fully-dead function body
    fn.code = std::move(out);
    return true;
}

bool
promoteReadOnlyGlobals(isa::Program &program)
{
    // Collect every address that any store can touch. Absolute stores
    // (b == -1) touch exactly their immediate; indexed stores use the
    // owning array's base address as the immediate and touch that whole
    // object (negative indices are undefined behaviour, as in C).
    std::vector<bool> written(static_cast<size_t>(program.memory_words),
                              false);
    auto mark_object = [&](int64_t base) {
        for (const auto &slot : program.globals) {
            if (slot.address == base) {
                for (int64_t a = slot.address;
                     a < slot.address + slot.size &&
                     a < program.memory_words; ++a) {
                    written[static_cast<size_t>(a)] = true;
                }
                return;
            }
        }
        // Unknown base (shouldn't happen with our code generator): be
        // conservative and poison everything.
        std::fill(written.begin(), written.end(), true);
    };
    for (const auto &fn : program.functions) {
        for (const auto &insn : fn.code) {
            if (insn.op != Opcode::kStore)
                continue;
            if (insn.b == -1) {
                if (insn.imm >= 0 && insn.imm < program.memory_words)
                    written[static_cast<size_t>(insn.imm)] = true;
            } else {
                mark_object(insn.imm);
            }
        }
    }

    // Replace loads of never-written scalars with their initial value.
    bool changed = false;
    for (auto &fn : program.functions) {
        for (auto &insn : fn.code) {
            if (insn.op != Opcode::kLoad || insn.b != -1)
                continue;
            int64_t addr = insn.imm;
            if (addr < 0 || addr >= program.memory_words ||
                written[static_cast<size_t>(addr)]) {
                continue;
            }
            // Only promote scalar objects; a read-only array load with a
            // constant address is rare and not worth the bookkeeping.
            bool is_scalar = false;
            for (const auto &slot : program.globals) {
                if (slot.address == addr) {
                    is_scalar = slot.size == 1;
                    break;
                }
            }
            if (!is_scalar)
                continue;
            int64_t value = 0;
            for (const auto &di : program.data_init) {
                if (di.address == addr) {
                    value = di.value;
                    break;
                }
            }
            insn = Instruction{Opcode::kMovI, insn.a, -1, -1, -1, value};
            changed = true;
        }
    }
    return changed;
}

void
compactBranchSites(isa::Program &program)
{
    std::vector<int> remap(program.branch_sites.size(), -1);
    std::vector<isa::BranchSite> new_sites;
    for (auto &fn : program.functions) {
        for (auto &insn : fn.code) {
            if (insn.op != Opcode::kBr)
                continue;
            size_t old_id = static_cast<size_t>(insn.imm);
            if (remap[old_id] == -1) {
                remap[old_id] = static_cast<int>(new_sites.size());
                new_sites.push_back(program.branch_sites[old_id]);
            }
            insn.imm = remap[old_id];
        }
    }
    program.branch_sites = std::move(new_sites);
}

namespace {

/**
 * One entry of an optimization pipeline: a display/metric name (also the
 * trace span name, prefixed "pass.") and the per-function transform.
 */
struct PassDesc
{
    const char *name;
    std::function<bool(Function &)> run;
};

int64_t
programInsns(const isa::Program &program)
{
    int64_t n = 0;
    for (const auto &fn : program.functions)
        n += static_cast<int64_t>(fn.code.size());
    return n;
}

/**
 * Apply one pass to every function, timed and traced. Per pass this
 * accumulates compiler.pass.<name>.micros / .runs / .insns_removed in
 * the metrics registry and, when tracing, emits one span per invocation
 * carrying the round number, whether anything changed, and the IR size
 * delta (only compactCode deletes instructions; the nop-producing
 * passes show up as delta 0 until compaction).
 */
bool
runPassOverProgram(isa::Program &program, const PassDesc &pass, int round)
{
    obs::ScopedSpan span(pass.name, "compiler.pass");
    const int64_t t0 = obs::nowMicros();
    const int64_t before = programInsns(program);
    bool changed = false;
    for (auto &fn : program.functions)
        changed |= pass.run(fn);
    const int64_t after = programInsns(program);
    const int64_t micros = obs::nowMicros() - t0;
    const std::string prefix = std::string("compiler.pass.") + pass.name;
    obs::counter(prefix + ".micros").add(micros);
    obs::counter(prefix + ".runs").add(1);
    obs::counter(prefix + ".insns_removed").add(before - after);
    if (span.active()) {
        span.arg("round", int64_t{round});
        span.arg("changed", int64_t{changed});
        span.arg("insns_before", before);
        span.arg("insns_after", after);
    }
    return changed;
}

/** Program-level fixpoint: rounds of the pass sequence until a whole
 *  round changes nothing, capped at @p max_rounds (matching the old
 *  per-function cap — passes are intraprocedural and deterministic, so
 *  the final code is identical to per-function iteration). */
void
runPipeline(isa::Program &program, const std::vector<PassDesc> &passes,
            int max_rounds)
{
    for (int round = 0; round < max_rounds; ++round) {
        bool changed = false;
        for (const auto &pass : passes)
            changed |= runPassOverProgram(program, pass, round);
        if (!changed)
            break;
    }
}

} // namespace

void
optimizeProgram(isa::Program &program, bool optimize,
                bool eliminate_dead_code)
{
    if (optimize) {
        obs::ScopedSpan span("optimize", "compiler");
        const std::vector<PassDesc> safe_passes = {
            {"foldConstants",
             [](Function &fn) {
                 return foldConstants(fn, /*fold_branches=*/false);
             }},
            {"propagateCopies", propagateCopies},
            {"removeDeadWrites", removeDeadWrites},
            {"threadJumps",
             [](Function &fn) {
                 return threadJumps(fn, /*fold_trivial_branches=*/false);
             }},
            {"compactCode", compactCode},
        };
        runPipeline(program, safe_passes, /*max_rounds=*/4);
    }
    if (eliminate_dead_code) {
        obs::ScopedSpan span("optimize.dce", "compiler");
        {
            obs::ScopedSpan promote_span("promoteReadOnlyGlobals",
                                         "compiler.pass");
            const int64_t t0 = obs::nowMicros();
            promoteReadOnlyGlobals(program);
            obs::counter("compiler.pass.promoteReadOnlyGlobals.micros")
                .add(obs::nowMicros() - t0);
            obs::counter("compiler.pass.promoteReadOnlyGlobals.runs")
                .add(1);
        }
        const std::vector<PassDesc> dce_passes = {
            {"foldConstants.dce",
             [](Function &fn) {
                 return foldConstants(fn, /*fold_branches=*/true);
             }},
            {"propagateCopies", propagateCopies},
            {"threadJumps.dce",
             [](Function &fn) {
                 return threadJumps(fn, /*fold_trivial_branches=*/true);
             }},
            {"removeUnreachable", removeUnreachable},
            {"removeDeadWrites", removeDeadWrites},
            {"compactCode", compactCode},
        };
        runPipeline(program, dce_passes, /*max_rounds=*/6);
        compactBranchSites(program);
    }
}

} // namespace ifprob

#include "compiler/prelude.h"

namespace ifprob {

namespace {

const char kPrelude[] = R"PRELUDE(
// ---- minic runtime prelude (see prelude.h) ----

int __ungot = -2;
int geti_eof = 0;

int ngetc() {
    int c;
    if (__ungot != -2) {
        c = __ungot;
        __ungot = -2;
        return c;
    }
    return getc();
}

void ungetch(int c) {
    __ungot = c;
}

int geti() {
    int c, sign, value;
    c = ngetc();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == ',')
        c = ngetc();
    sign = 1;
    if (c == '-') {
        sign = -1;
        c = ngetc();
    }
    if (c < '0' || c > '9') {
        geti_eof = 1;
        ungetch(c);
        return 0;
    }
    value = 0;
    while (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
        c = ngetc();
    }
    ungetch(c);
    return sign * value;
}

float getf() {
    int c, sign, esign, e, i;
    float value, scale;
    c = ngetc();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == ',')
        c = ngetc();
    sign = 1;
    if (c == '-') {
        sign = -1;
        c = ngetc();
    }
    if ((c < '0' || c > '9') && c != '.') {
        geti_eof = 1;
        ungetch(c);
        return 0.0;
    }
    value = 0.0;
    while (c >= '0' && c <= '9') {
        value = value * 10.0 + itof(c - '0');
        c = ngetc();
    }
    if (c == '.') {
        c = ngetc();
        scale = 0.1;
        while (c >= '0' && c <= '9') {
            value = value + scale * itof(c - '0');
            scale = scale * 0.1;
            c = ngetc();
        }
    }
    if (c == 'e' || c == 'E') {
        c = ngetc();
        esign = 1;
        if (c == '-') {
            esign = -1;
            c = ngetc();
        } else if (c == '+') {
            c = ngetc();
        }
        e = 0;
        while (c >= '0' && c <= '9') {
            e = e * 10 + (c - '0');
            c = ngetc();
        }
        i = 0;
        while (i < e) {
            if (esign > 0)
                value = value * 10.0;
            else
                value = value / 10.0;
            i = i + 1;
        }
    }
    ungetch(c);
    return itof(sign) * value;
}

int __pbuf[32];

void puti(int n) {
    int i, neg;
    neg = 0;
    if (n < 0) {
        neg = 1;
        n = -n;
    }
    i = 0;
    do {
        __pbuf[i] = n % 10;
        n = n / 10;
        i = i + 1;
    } while (n > 0);
    if (neg)
        putc('-');
    while (i > 0) {
        i = i - 1;
        putc('0' + __pbuf[i]);
    }
}

int imin(int a, int b) { return a < b ? a : b; }
int imax(int a, int b) { return a > b ? a : b; }
float fmin2(float a, float b) { return a < b ? a : b; }
float fmax2(float a, float b) { return a > b ? a : b; }
)PRELUDE";

} // namespace

std::string_view
preludeSource()
{
    return kPrelude;
}

} // namespace ifprob

#ifndef IFPROB_COMPILER_CODEGEN_H
#define IFPROB_COMPILER_CODEGEN_H

#include <vector>

#include "compiler/options.h"
#include "isa/program.h"
#include "lang/ast.h"

namespace ifprob {

/**
 * Translate one or more parsed minic units (prelude first, then user code)
 * into an isa::Program.
 *
 * Performs name resolution and type checking as it goes; all semantic
 * errors are collected and reported together in a thrown CompileError.
 * Branch site ids are assigned in deterministic emission order, giving the
 * stable source-keyed identity the profile machinery relies on.
 */
isa::Program generate(const std::vector<const lang::Unit *> &units,
                      const CompileOptions &options);

} // namespace ifprob

#endif // IFPROB_COMPILER_CODEGEN_H

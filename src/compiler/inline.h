#ifndef IFPROB_COMPILER_INLINE_H
#define IFPROB_COMPILER_INLINE_H

#include "isa/program.h"

namespace ifprob {

/** Controls for the inliner. */
struct InlineOptions
{
    /** Callees larger than this (static instructions) stay calls. */
    int max_callee_size = 60;
    /** Stop growing a caller beyond this many instructions. */
    int max_caller_size = 20000;
    /** Rounds of inlining (chains of small calls collapse round by
     *  round). */
    int rounds = 3;
};

/**
 * Procedure inlining — the capability the paper calls essential for ILP
 * compilers ("an executed call that is not inlined will cost two breaks
 * in control — a deadly effect when a short routine is called in an
 * inner loop"). Small non-recursive callees are spliced into their
 * callers: argument staging becomes register moves, returns become
 * moves plus jumps to the continuation.
 *
 * Branch sites inside an inlined body keep their original site ids, so
 * multiple inlined copies of one source branch share a counter — the
 * same source-level keying the IFPROBBER used (its results "reflect the
 * probabilities associated with the static source branches",
 * independent of compiler transformations).
 *
 * @returns the number of call sites inlined.
 */
int inlineProgram(isa::Program &program, const InlineOptions &options = {});

} // namespace ifprob

#endif // IFPROB_COMPILER_INLINE_H

/**
 * @file
 * Authoring a new workload against the library API: a word-frequency
 * counter written in minic, three synthetic datasets, and a miniature
 * Figure-2-style cross-dataset prediction study over it — showing how to
 * extend the paper's methodology to your own programs.
 *
 *   $ ./examples/custom_workload
 */
#include <cstdio>

#include "compiler/pipeline.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/rng.h"
#include "support/str.h"
#include "vm/machine.h"

namespace {

/** A hash-table word counter with top-of-table reporting. */
const char *kWordCount = R"(
int ht_hash[4096];
int ht_count[4096];
int ht_chars[32768];  // interned word text
int ht_off[4096];
int ht_len[4096];
int word[64];
int nwords = 0;

int lookup(int h, int len) {
    int slot, i, off, same;
    slot = h & 4095;
    while (ht_count[slot] != 0) {
        if (ht_hash[slot] == h && ht_len[slot] == len) {
            same = 1;
            off = ht_off[slot];
            for (i = 0; i < len; i++)
                if (ht_chars[off + i] != word[i])
                    same = 0;
            if (same)
                return slot;
        }
        slot = (slot + 1) & 4095;
    }
    return slot;
}

int main() {
    int c, len, h, slot, i, total, distinct, maxcount;
    total = 0;
    distinct = 0;
    c = getc();
    while (c != -1) {
        while (c == ' ' || c == '\n' || c == '\t' || c == ',' || c == '.')
            c = getc();
        if (c == -1)
            break;
        len = 0;
        h = 5381;
        while (c != -1 && c != ' ' && c != '\n' && c != '\t' &&
               c != ',' && c != '.') {
            if (len < 64) {
                word[len] = c;
                len = len + 1;
            }
            h = (h * 33 + c) & 268435455;
            c = getc();
        }
        slot = lookup(h, len);
        if (ht_count[slot] == 0) {
            distinct = distinct + 1;
            ht_hash[slot] = h;
            ht_len[slot] = len;
            ht_off[slot] = distinct * 64;
            for (i = 0; i < len; i++)
                ht_chars[distinct * 64 + i] = word[i];
        }
        ht_count[slot] = ht_count[slot] + 1;
        total = total + 1;
    }
    maxcount = 0;
    for (i = 0; i < 4096; i++)
        maxcount = imax(maxcount, ht_count[i]);
    puti(total);
    putc(' ');
    puti(distinct);
    putc(' ');
    puti(maxcount);
    putc('\n');
    return 0;
})";

std::string
makeText(uint64_t seed, int vocabulary, size_t words)
{
    ifprob::Rng rng(seed);
    std::string out;
    for (size_t i = 0; i < words; ++i) {
        // Zipf-ish: small ids much more frequent.
        uint64_t id = rng.below(rng.below(static_cast<uint64_t>(vocabulary)) + 1);
        out += ifprob::strPrintf("w%llu ",
                                 static_cast<unsigned long long>(id));
        if (i % 12 == 11)
            out += "\n";
    }
    return out;
}

} // namespace

int
main()
{
    using namespace ifprob;

    struct Dataset
    {
        const char *name;
        std::string input;
    };
    const Dataset datasets[] = {
        {"prose", makeText(1, 400, 20000)},    // big vocabulary
        {"logfile", makeText(2, 25, 20000)},   // tiny vocabulary, hot hits
        {"mixed", makeText(3, 120, 20000)},
    };

    isa::Program program = compile(kWordCount);
    vm::Machine machine(program);

    // Collect stats and profiles for every dataset.
    std::vector<vm::RunStats> stats;
    std::vector<profile::ProfileDb> profiles;
    for (const auto &d : datasets) {
        vm::RunResult r = machine.run(d.input);
        std::printf("%-8s -> %s", d.name, r.output.c_str());
        stats.push_back(r.stats);
        profiles.emplace_back("wordcount", program.fingerprint(), r.stats);
    }

    // Miniature Figure 2: self vs sum-of-others.
    metrics::TextTable table;
    table.setHeader({"target", "self instrs/break", "others instrs/break"});
    for (size_t t = 0; t < 3; ++t) {
        std::vector<profile::ProfileDb> others;
        for (size_t p = 0; p < 3; ++p)
            if (p != t)
                others.push_back(profiles[p]);
        predict::ProfilePredictor self(profiles[t]);
        predict::ProfilePredictor cross(profile::ProfileDb::merge(
            others, profile::MergeMode::kScaled));
        table.addRow({datasets[t].name,
                      strPrintf("%.1f", metrics::breaksWithPredictor(
                                            stats[t], self)
                                            .instructionsPerBreak()),
                      strPrintf("%.1f", metrics::breaksWithPredictor(
                                            stats[t], cross)
                                            .instructionsPerBreak())});
    }
    std::printf("\n%s", table.render().c_str());
    return 0;
}

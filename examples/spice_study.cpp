/**
 * @file
 * A focused replication of the paper's hardest case: spice2g6. Builds
 * the full pairwise predictor-vs-target matrix over the spice datasets
 * and reports per-pair prediction quality plus a coverage diagnostic
 * (what fraction of the target's dynamic branches execute at sites the
 * predictor never saw) — the effect the authors suspected but could not
 * quantify ("different datasets using entirely different modules").
 *
 *   $ ./examples/spice_study
 */
#include <cstdio>

#include "compiler/pipeline.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

int
main()
{
    using namespace ifprob;

    const workloads::Workload &spice = workloads::get("spice");
    isa::Program program = compile(spice.source);
    vm::Machine machine(program);

    std::vector<std::string> names;
    std::vector<vm::RunStats> stats;
    std::vector<profile::ProfileDb> profiles;
    for (const auto &d : spice.datasets) {
        names.push_back(d.name);
        vm::RunResult r = machine.run(d.input);
        profiles.emplace_back("spice", program.fingerprint(), r.stats);
        stats.push_back(std::move(r.stats));
    }

    // Pairwise prediction quality, % of the self bound.
    metrics::TextTable matrix;
    {
        std::vector<std::string> header = {"target \\ predictor"};
        for (const auto &n : names)
            header.push_back(n);
        matrix.setHeader(header);
    }
    for (size_t t = 0; t < names.size(); ++t) {
        predict::ProfilePredictor self(profiles[t]);
        double bound = metrics::breaksWithPredictor(stats[t], self)
                           .instructionsPerBreak();
        std::vector<std::string> row = {names[t]};
        for (size_t p = 0; p < names.size(); ++p) {
            if (p == t) {
                row.push_back("--");
                continue;
            }
            predict::ProfilePredictor cross(profiles[p]);
            double v = metrics::breaksWithPredictor(stats[t], cross)
                           .instructionsPerBreak();
            row.push_back(strPrintf("%.0f%%", 100.0 * v / bound));
        }
        matrix.addRow(row);
    }
    std::printf("Pairwise prediction (instrs/break as %% of self "
                "bound):\n%s\n",
                matrix.render().c_str());

    // Coverage diagnostic: dynamic branches of the target executing at
    // sites the predictor never exercised.
    metrics::TextTable coverage;
    {
        std::vector<std::string> header = {"target \\ predictor"};
        for (const auto &n : names)
            header.push_back(n);
        coverage.setHeader(header);
    }
    for (size_t t = 0; t < names.size(); ++t) {
        std::vector<std::string> row = {names[t]};
        for (size_t p = 0; p < names.size(); ++p) {
            if (p == t) {
                row.push_back("--");
                continue;
            }
            int64_t uncovered = 0, total = 0;
            for (size_t site = 0; site < stats[t].branches.size();
                 ++site) {
                int64_t executed = stats[t].branches[site].executed;
                total += executed;
                if (profiles[p].site(site).executed == 0.0)
                    uncovered += executed;
            }
            row.push_back(strPrintf(
                "%.1f%%",
                total > 0 ? 100.0 * static_cast<double>(uncovered) /
                                static_cast<double>(total)
                          : 0.0));
        }
        coverage.addRow(row);
    }
    std::printf("Coverage gaps (%% of target's dynamic branches at sites "
                "the predictor never saw):\n%s",
                coverage.render().c_str());
    return 0;
}

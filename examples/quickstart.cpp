/**
 * @file
 * Quickstart: compile a minic program, run it on the VM, profile its
 * branches, and measure how well a profile-based static prediction does
 * — the whole library pipeline in ~60 lines.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "compiler/pipeline.h"
#include "metrics/breaks.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"

int
main()
{
    using namespace ifprob;

    // A little program with two very different branches: a 99%-taken
    // range check and a data-dependent parity test.
    const char *source = R"(
        int main() {
            int i, x, hits;
            x = 42;
            hits = 0;
            for (i = 0; i < 10000; i++) {
                x = (x * 1103515245 + 12345) % 2147483648;
                if (i % 100 != 99)      // almost always true
                    hits = hits + 1;
                if (x & 1)              // a coin flip
                    hits = hits + 2;
            }
            return hits & 255;
        })";

    // 1. Compile (classical optimizations on, DCE off — the paper's
    //    configuration) and run.
    isa::Program program = compile(source);
    vm::Machine machine(program);
    vm::RunResult result = machine.run(/*input=*/"");

    std::printf("executed %lld instructions, %lld conditional branches "
                "(%.1f%% taken)\n",
                static_cast<long long>(result.stats.instructions),
                static_cast<long long>(result.stats.cond_branches),
                result.stats.percentTaken());

    // 2. Build the IFPROBBER-style profile database from the run.
    profile::ProfileDb db("quickstart", program.fingerprint(),
                          result.stats);

    // 3. Use it as a static predictor and score it against the same run
    //    (the paper's "best possible prediction" bound).
    predict::ProfilePredictor predictor(db);
    auto quality = predict::evaluate(result.stats, predictor);
    std::printf("profile prediction: %.2f%% of branches correct\n",
                quality.percentCorrect());

    // 4. The paper's preferred measure: instructions per mispredicted
    //    branch (a break in control).
    auto breaks = metrics::breaksWithPredictor(result.stats, predictor);
    std::printf("instructions per break in control: %.1f\n",
                breaks.instructionsPerBreak());

    // 5. Per-site detail, the data the IFPROB directives would feed back.
    for (size_t i = 0; i < db.numSites(); ++i) {
        const auto &w = db.site(i);
        if (w.executed == 0)
            continue;
        const auto &site = program.branch_sites[i];
        std::printf("  site %zu (line %d, %s): executed %.0f, taken "
                    "%.1f%% -> predict %s\n",
                    i, site.line,
                    std::string(isa::branchKindName(site.kind)).c_str(),
                    w.executed, 100.0 * w.taken / w.executed,
                    predictor.predictTaken(static_cast<int>(i))
                        ? "taken" : "not taken");
    }
    return 0;
}

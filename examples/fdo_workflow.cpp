/**
 * @file
 * The full profile-feedback workflow from the paper, end to end:
 *
 *   1. compile a program (the eqntott workload),
 *   2. run it over several *training* datasets, accumulating one
 *      IFPROBBER database across runs (with a save/load round trip, as
 *      the real tool persisted its counts between runs),
 *   3. predict a *held-out* dataset from the accumulated database,
 *   4. compare against the best-possible bound and the compiler's naive
 *      heuristics — the paper's central comparison.
 *
 *   $ ./examples/fdo_workflow
 */
#include <cstdio>
#include <sstream>

#include "compiler/pipeline.h"
#include "metrics/breaks.h"
#include "predict/evaluate.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"
#include "workloads/workload.h"

int
main()
{
    using namespace ifprob;

    const workloads::Workload &eqntott = workloads::get("eqntott");
    isa::Program program = compile(eqntott.source);
    vm::Machine machine(program);

    const std::string held_out = "intpri";
    std::printf("training on:");

    // Accumulate one database over every dataset except the held-out one.
    profile::ProfileDb db("eqntott", program.fingerprint(),
                          program.branch_sites.size());
    vm::RunStats held_out_stats;
    for (const auto &dataset : eqntott.datasets) {
        vm::RunResult run = machine.run(dataset.input);
        if (dataset.name == held_out) {
            held_out_stats = run.stats;
            continue;
        }
        std::printf(" %s", dataset.name.c_str());
        db.accumulate(run.stats); // "the database of branch counts is
                                  //  augmented" after each run
    }
    std::printf("; predicting: %s\n", held_out.c_str());

    // Persist and reload, as the IFPROBBER did between runs.
    std::stringstream disk;
    db.save(disk);
    profile::ProfileDb reloaded = profile::ProfileDb::load(disk);

    // Score everything on the held-out run.
    predict::ProfilePredictor feedback(reloaded);
    predict::ProfilePredictor bound(
        profile::ProfileDb("eqntott", program.fingerprint(),
                           held_out_stats));
    predict::HeuristicPredictor naive(program,
                                      predict::Heuristic::kBackwardTaken);
    predict::HeuristicPredictor opcode(program,
                                       predict::Heuristic::kOpcodeRules);

    auto report = [&](const char *name,
                      const predict::StaticPredictor &predictor) {
        auto quality = predict::evaluate(held_out_stats, predictor);
        auto breaks =
            metrics::breaksWithPredictor(held_out_stats, predictor);
        std::printf("  %-22s %6.2f%% correct, %8.1f instrs/break\n", name,
                    quality.percentCorrect(),
                    breaks.instructionsPerBreak());
    };
    report("self (bound)", bound);
    report("profile feedback", feedback);
    report("loop heuristic", naive);
    report("opcode heuristics", opcode);
    return 0;
}

/**
 * @file
 * The whole ILP story on one program, end to end — what the paper's
 * static branch predictions are *for*. Starting from the mcc workload
 * (the compiler, the branchiest program in the suite):
 *
 *   1. profile it and measure instructions per break in control;
 *   2. inline the small callees (call/return breaks disappear);
 *   3. lay the code out along feedback-selected traces (jumps
 *      disappear);
 *   4. select scheduling traces and report the candidate-set sizes a
 *      trace scheduler would obtain at each stage.
 *
 *   $ ./examples/ilp_pipeline
 */
#include <cstdio>

#include "compiler/inline.h"
#include "compiler/layout.h"
#include "compiler/pipeline.h"
#include "ilp/runlength.h"
#include "ilp/trace.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

using namespace ifprob;

namespace {

struct StageReport
{
    std::string name;
    double per_break_no_calls = 0.0;
    double per_break_with_calls = 0.0;
    double trace_instrs_per_exit = 0.0;
    int64_t instructions = 0;
    int64_t jumps = 0;
    int64_t calls = 0;
};

StageReport
measure(const char *name, const isa::Program &program,
        const std::string &input)
{
    vm::Machine machine(program);
    vm::RunResult run = machine.run(input);
    profile::ProfileDb db("stage", program.fingerprint(), run.stats);
    predict::ProfilePredictor predictor(db);

    StageReport report;
    report.name = name;
    report.per_break_no_calls =
        metrics::breaksWithPredictor(run.stats, predictor,
                                     {.count_calls = false})
            .instructionsPerBreak();
    report.per_break_with_calls =
        metrics::breaksWithPredictor(run.stats, predictor,
                                     {.count_calls = true})
            .instructionsPerBreak();
    report.trace_instrs_per_exit =
        ilp::selectTraces(program, predictor, db).instructionsPerExit();
    report.instructions = run.stats.instructions;
    report.jumps = run.stats.jumps;
    report.calls = run.stats.direct_calls + run.stats.indirect_calls;
    return report;
}

} // namespace

int
main()
{
    const workloads::Workload &mcc = workloads::get("mcc");
    const std::string &input = mcc.datasets.front().input;

    // Stage 0: the experiment configuration (classical opts, no DCE).
    isa::Program baseline = compile(mcc.source);

    // Profile once; feedback drives both transformations.
    vm::Machine machine(baseline);
    vm::RunResult profile_run = machine.run(input);
    profile::ProfileDb db("mcc", baseline.fingerprint(),
                          profile_run.stats);
    predict::ProfilePredictor feedback(db);

    // Stage 1: inline the small callees (site ids survive, so the same
    // profile db still applies).
    isa::Program inlined = baseline;
    int inlined_calls = inlineProgram(inlined);

    // Stage 2: lay out along feedback traces.
    isa::Program laid_out = inlined;
    predict::ProfilePredictor inlined_feedback(db); // same sites
    layoutProgram(laid_out, inlined_feedback, db);

    std::printf("workload: mcc/%s   (inlined %d call sites)\n\n",
                mcc.datasets.front().name.c_str(), inlined_calls);

    metrics::TextTable table;
    table.setHeader({"stage", "instrs", "dyn jumps", "dyn calls",
                     "instrs/break", "instrs/break (+calls)",
                     "trace instrs/exit"});
    for (const auto &r :
         {measure("baseline", baseline, input),
          measure("+ inlining", inlined, input),
          measure("+ layout", laid_out, input)}) {
        table.addRow({r.name, withCommas(r.instructions),
                      withCommas(r.jumps), withCommas(r.calls),
                      strPrintf("%.1f", r.per_break_no_calls),
                      strPrintf("%.1f", r.per_break_with_calls),
                      strPrintf("%.1f", r.trace_instrs_per_exit)});
    }
    std::printf("%s\n", table.render().c_str());

    // Run-length distribution on the final image.
    vm::Machine final_machine(laid_out);
    vm::RunResult final_profile = final_machine.run(input);
    profile::ProfileDb final_db("mcc", laid_out.fingerprint(),
                                final_profile.stats);
    predict::ProfilePredictor final_predictor(final_db);
    ilp::RunLengthAnalyzer analyzer(final_predictor);
    auto run = final_machine.run(input, {}, &analyzer);
    auto summary = std::move(analyzer).summary(run.stats.instructions);
    std::printf("final run-length distribution between breaks: "
                "mean %.0f, p10 %lld, p50 %lld, p90 %lld\n"
                "%.0f%% of instructions live in runs of >= 32.\n",
                summary.mean, static_cast<long long>(summary.p10),
                static_cast<long long>(summary.p50),
                static_cast<long long>(summary.p90),
                100.0 * summary.fractionInRunsAtLeast(32));
    return 0;
}

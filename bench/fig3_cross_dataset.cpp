/**
 * @file
 * Reproduces Figures 3a and 3b: for each dataset, the best and worst
 * single-other-dataset predictor, expressed as a percentage of the best
 * possible (self) prediction's instructions-per-break.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "support/str.h"

using namespace ifprob;

namespace {

void
render(const std::vector<harness::Fig3Row> &rows, bool spice_only)
{
    std::printf(spice_only
                    ? "--- Figure 3a: spice2g6 datasets ---\n"
                    : "--- Figure 3b: C / integer programs ---\n");
    metrics::TextTable table;
    table.setHeader({"program", "target dataset", "best %", "(using)",
                     "worst %", "(using)", "worst bar"});
    for (const auto &r : rows) {
        bool is_spice = r.program == "spice";
        if (is_spice != spice_only)
            continue;
        if (!spice_only && r.fortran_like)
            continue;
        table.addRow({r.program, r.dataset,
                      strPrintf("%.0f%%", r.best_pct), r.best_predictor,
                      strPrintf("%.0f%%", r.worst_pct), r.worst_predictor,
                      metrics::asciiBar(r.worst_pct, 100.0, 25)});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Figure 3a / 3b", "Fisher & Freudenberger 1992, Fig 3",
                   "Best and worst single-dataset predictors as % of the "
                   "self-prediction bound.\nPaper shape: worst cases "
                   "hover around 50-70%, with dramatic outliers in\n"
                   "spice (length-mismatched datasets) and compress "
                   "(the cmprssc dataset).");
    harness::Runner runner;
    auto rows = harness::figure3(runner);
    render(rows, /*spice_only=*/true);
    render(rows, /*spice_only=*/false);
    bench::footer();
    return 0;
}

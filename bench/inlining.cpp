/**
 * @file
 * Inlining and breaks in control (paper §2, "Calls and returns"): "an
 * executed call that is not inlined will cost two breaks ... Below we
 * show the instructions per break in control with calls and returns
 * left in and with them ignored. The differences in our sample set are
 * reasonably small." This bench reproduces that comparison and then
 * actually performs the inlining, showing how much of the call/return
 * cost a simple inliner recovers.
 */
#include <cstdio>

#include "bench_util.h"
#include "compiler/inline.h"
#include "harness/experiments.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "support/str.h"
#include "vm/machine.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Inlining vs call/return breaks",
                   "Fisher & Freudenberger 1992, §2 (calls and returns)",
                   "Instructions per break with direct calls/returns "
                   "counted, before and after\ninlining small callees. "
                   "The no-calls column is the paper's assumption "
                   "(perfect\ninlining); real inlining should close most "
                   "of the gap.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "calls ignored",
                     "calls counted", "after inlining",
                     "dyn calls removed"});
    for (const auto &w : workloads::all()) {
        const auto &dataset = w.datasets.front();
        const auto &baseline = runner.stats(w.name, dataset.name);
        profile::ProfileDb db =
            harness::profileOf(runner, w.name, dataset.name);
        predict::ProfilePredictor self(db);

        metrics::BreakConfig no_calls{.count_calls = false};
        metrics::BreakConfig with_calls{.count_calls = true};
        double ignored = metrics::breaksWithPredictor(baseline, self,
                                                      no_calls)
                             .instructionsPerBreak();
        double counted = metrics::breaksWithPredictor(baseline, self,
                                                      with_calls)
                             .instructionsPerBreak();

        // Inline and re-run. Branch sites are preserved, so the same
        // profile/predictor still applies to the inlined image.
        isa::Program inlined = runner.program(w.name);
        inlineProgram(inlined);
        vm::Machine machine(inlined);
        auto run = machine.run(dataset.input, bench::defaultLimits());
        double after = metrics::breaksWithPredictor(run.stats, self,
                                                    with_calls)
                           .instructionsPerBreak();
        double removed =
            baseline.direct_calls > 0
                ? 100.0 * (1.0 -
                           static_cast<double>(run.stats.direct_calls) /
                               static_cast<double>(baseline.direct_calls))
                : 0.0;
        table.addRow({w.name, dataset.name, bench::perBreak(ignored),
                      bench::perBreak(counted), bench::perBreak(after),
                      strPrintf("%.0f%%", removed)});
    }
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

#ifndef IFPROB_BENCH_BENCH_UTIL_H
#define IFPROB_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "metrics/report.h"
#include "obs/run_report.h"
#include "support/str.h"

namespace ifprob::bench {

/**
 * Standard banner so the concatenated bench output reads as a report.
 * As a side effect this opts the binary into machine-readable run
 * reports: every Runner execution appends an "ifprob.run.v1" JSONL
 * record under bench/out/ (override with IFPROB_REPORT_DIR; "off"
 * disables), which tools/obsreport aggregates into BENCH_report.json.
 */
inline void
heading(const char *experiment, const char *paper_ref, const char *what)
{
    obs::enableRunReportsDefault("bench/out");
    std::string bar(78, '=');
    std::printf("\n%s\n%s  [%s]\n%s\n%s\n\n", bar.c_str(), experiment,
                paper_ref, what, bar.c_str());
}

/** Print a table and mirror its rows into the JSONL run report. */
inline void
emitTable(const char *table_name, const metrics::TextTable &table)
{
    std::printf("%s\n", table.render().c_str());
    auto &sink = obs::ReportSink::global();
    if (sink.enabled()) {
        for (const auto &line :
             ifprob::split(table.renderJsonl(table_name), '\n')) {
            if (!line.empty())
                sink.writeLine(line);
        }
    }
}

/** Format instructions-per-break values the way the paper's axes read. */
inline std::string
perBreak(double v)
{
    if (v >= 1000.0)
        return ifprob::withCommas(static_cast<long long>(v + 0.5));
    return ifprob::strPrintf("%.1f", v);
}

} // namespace ifprob::bench

#endif // IFPROB_BENCH_BENCH_UTIL_H

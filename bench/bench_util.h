#ifndef IFPROB_BENCH_BENCH_UTIL_H
#define IFPROB_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exec/pool.h"
#include "metrics/report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "support/str.h"
#include "vm/machine.h"

namespace ifprob::bench {

namespace detail {
/** Wall-clock origin for the speedup footer, set by initJobs(). */
inline int64_t &
startMicros()
{
    static int64_t t = 0;
    return t;
}
} // namespace detail

/**
 * Shared `--jobs N` / `-j N` parser for the bench binaries. Call first
 * thing in main(); it configures the process-wide exec pool (the flag
 * wins over the IFPROB_JOBS environment variable, which wins over
 * hardware concurrency) and starts the wall clock for footer(). Returns
 * the effective job count. Exits with a usage message on a malformed
 * flag.
 */
inline int
initJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            if (i + 1 < argc)
                value = argv[++i];
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            value = arg + 2;
        } else {
            continue;
        }
        int jobs = value ? std::atoi(value) : 0;
        if (jobs < 1) {
            std::fprintf(stderr,
                         "usage: %s [--jobs N]\n  N >= 1 worker threads "
                         "for the experiment matrix (default: "
                         "IFPROB_JOBS, else hardware concurrency)\n",
                         argv[0]);
            std::exit(2);
        }
        exec::setPlannedJobs(jobs);
    }
    detail::startMicros() = obs::nowMicros();
    return exec::plannedJobs();
}

/**
 * Standard banner so the concatenated bench output reads as a report.
 * As a side effect this opts the binary into machine-readable run
 * reports: every Runner execution appends an "ifprob.run.v1" JSONL
 * record under bench/out/ (override with IFPROB_REPORT_DIR; "off"
 * disables), which tools/obsreport aggregates into BENCH_report.json.
 */
inline void
heading(const char *experiment, const char *paper_ref, const char *what)
{
    obs::enableRunReportsDefault("bench/out");
    std::string bar(78, '=');
    std::printf("\n%s\n%s  [%s]\n%s\n%s\n\n", bar.c_str(), experiment,
                paper_ref, what, bar.c_str());
}

/**
 * Parallel-run footer: effective job count plus the estimated speedup
 * versus a serial run (total busy time across workers over wall
 * clock — work-conservation makes busy time the serial estimate). On a
 * machine with fewer cores than jobs the ratio measures in-flight
 * concurrency, not achieved speedup (threads accumulate busy time
 * while descheduled), hence "est.". Prints nothing when jobs == 1, so
 * serial output stays byte-identical to the historical single-threaded
 * harness.
 */
inline void
footer()
{
    int jobs = exec::plannedJobs();
    if (jobs <= 1)
        return;
    double wall = static_cast<double>(obs::nowMicros() -
                                      detail::startMicros()) /
                  1e6;
    double busy = static_cast<double>(
                      obs::counter("exec.busy_micros").value()) /
                  1e6;
    double speedup = wall > 0.0 ? busy / wall : 0.0;
    std::printf("[jobs=%d  busy %.2fs over %.2fs wall  ~%.2fx est. "
                "speedup vs serial]\n",
                jobs, busy, wall, speedup);
}

/** Print a table and mirror its rows into the JSONL run report. */
inline void
emitTable(const char *table_name, const metrics::TextTable &table)
{
    std::printf("%s\n", table.render().c_str());
    auto &sink = obs::ReportSink::global();
    if (sink.enabled()) {
        for (const auto &line :
             ifprob::split(table.renderJsonl(table_name), '\n')) {
            if (!line.empty())
                sink.writeLine(line);
        }
    }
}

/**
 * The run limits every bench binary executes under: effectively
 * unlimited (the largest workload runs ~150M instructions), but a
 * backstop against a miscompiled workload spinning forever. One
 * definition so the benches — and Runner::traceOf, which mirrors it —
 * agree on the execution envelope.
 */
inline vm::RunLimits
defaultLimits()
{
    vm::RunLimits limits;
    limits.max_instructions = 4'000'000'000ll;
    return limits;
}

/**
 * The repetition count shared by the A/B benches' best-of timing.
 *
 * Why best-of-7 with fresh state per repetition (micro_vm's discipline,
 * extracted here so the other benches measure the same way): freed
 * allocations would be handed back at the same addresses, but state
 * kept alive across repetitions forces each rep's working set onto new
 * heap placements, so best-of across reps samples cache-set layouts as
 * well as scheduling windows — on a one-core box either one alone can
 * swing a single measurement by 10-25%. The minimum over 7 reps is a
 * stable estimate of the undisturbed cost.
 */
inline constexpr int kBestOfRepetitions = 7;

/** Time one invocation of @p body and fold it into @p best (min
 *  micros; 0 means "no measurement yet"). Returns this rep's micros. */
template <typename Body>
inline int64_t
timeIntoBest(int64_t &best, Body &&body)
{
    const int64_t t0 = obs::nowMicros();
    body();
    const int64_t micros = obs::nowMicros() - t0;
    if (best == 0 || micros < best)
        best = micros;
    return micros;
}

/**
 * Best-of-@p reps phase timing: each repetition runs @p prepare(rep)
 * untimed (drop caches, reset memos, force fresh placements), then
 * times @p body. Returns the minimum timed micros.
 */
template <typename Prepare, typename Body>
inline int64_t
bestOfMicros(Prepare &&prepare, Body &&body,
             int reps = kBestOfRepetitions)
{
    int64_t best = 0;
    for (int rep = 0; rep < reps; ++rep) {
        prepare(rep);
        timeIntoBest(best, body);
    }
    return best;
}

/**
 * The flags shared by every BENCH_*.json-emitting binary, parsed by
 * parseAbFlags(): `--ab` (run the A/B comparison instead of the
 * google-benchmark suite), `--min-speedup=X` (the pass/fail bar),
 * `--min-trace-vs-fast=X` (micro_vm only: the trace tier's bar against
 * the fast engine on the branchy kernels; 0 disables),
 * `--min-hot-speedup=X` (micro_trace only: the bar for hot replay vs
 * live on the counting-observer path; 0 disables),
 * `--min-zoo-speedup=X` (predictors only: the bar for the batched zoo
 * fan-out vs the same roster as scalar per-event observers; 0
 * disables), and `--out=PATH` (where the JSON record goes).
 * Unrecognized arguments land in `passthrough` (argv[0] first) for the
 * framework behind.
 */
struct AbFlags
{
    bool ab = false;
    double min_speedup = 1.0;
    double min_trace_vs_fast = 0.0;
    double min_hot_speedup = 0.0;
    double min_zoo_speedup = 0.0;
    std::string out_path;
    std::vector<char *> passthrough;
};

/** Parse the shared A/B flags out of argv (every binary had its own
 *  copy of this loop before bench/characterize made it a fourth). */
inline AbFlags
parseAbFlags(int argc, char **argv, const char *default_out)
{
    AbFlags flags;
    flags.out_path = default_out;
    flags.passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ab") == 0) {
            flags.ab = true;
        } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
            flags.min_speedup = std::atof(argv[i] + 14);
        } else if (std::strncmp(argv[i], "--min-trace-vs-fast=", 20) ==
                   0) {
            flags.min_trace_vs_fast = std::atof(argv[i] + 20);
        } else if (std::strncmp(argv[i], "--min-hot-speedup=", 18) == 0) {
            flags.min_hot_speedup = std::atof(argv[i] + 18);
        } else if (std::strncmp(argv[i], "--min-zoo-speedup=", 18) == 0) {
            flags.min_zoo_speedup = std::atof(argv[i] + 18);
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            flags.out_path = argv[i] + 6;
        } else {
            flags.passthrough.push_back(argv[i]);
        }
    }
    return flags;
}

/**
 * Write one flat bench record as @p out_path's single line and mirror
 * it through the run-report sink so tools/obsreport picks it up
 * alongside the ifprob.run.v1 stream. Returns false (after a stderr
 * message) when the file cannot be written.
 */
inline bool
emitBenchRecord(const std::string &out_path, const obs::JsonObject &json)
{
    const std::string line = json.str();
    bool ok = true;
    std::ofstream out(out_path);
    if (out) {
        out << line << "\n";
        std::printf("\n  wrote %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "bench: cannot write %s\n", out_path.c_str());
        ok = false;
    }
    obs::enableRunReportsDefault("bench/out");
    obs::ReportSink::global().writeLine(line);
    return ok;
}

/** Format instructions-per-break values the way the paper's axes read. */
inline std::string
perBreak(double v)
{
    if (v >= 1000.0)
        return ifprob::withCommas(static_cast<long long>(v + 0.5));
    return ifprob::strPrintf("%.1f", v);
}

} // namespace ifprob::bench

#endif // IFPROB_BENCH_BENCH_UTIL_H

#ifndef IFPROB_BENCH_BENCH_UTIL_H
#define IFPROB_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "support/str.h"

namespace ifprob::bench {

/** Standard banner so the concatenated bench output reads as a report. */
inline void
heading(const char *experiment, const char *paper_ref, const char *what)
{
    std::string bar(78, '=');
    std::printf("\n%s\n%s  [%s]\n%s\n%s\n\n", bar.c_str(), experiment,
                paper_ref, what, bar.c_str());
}

/** Format instructions-per-break values the way the paper's axes read. */
inline std::string
perBreak(double v)
{
    if (v >= 1000.0)
        return ifprob::withCommas(static_cast<long long>(v + 0.5));
    return ifprob::strPrintf("%.1f", v);
}

} // namespace ifprob::bench

#endif // IFPROB_BENCH_BENCH_UTIL_H

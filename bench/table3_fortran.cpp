/**
 * @file
 * Reproduces Table 3: instructions per break for the FORTRAN programs
 * with little or no dataset variability, under best-possible (self)
 * static prediction.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Table 3", "Fisher & Freudenberger 1992, Table 3",
                   "Instructions per break, FORTRAN programs with little "
                   "dataset variability.\nPaper values: tomcatv 7461, "
                   "matrix300 4853, nasa7 3400, fpppp 951-1028,\nLFK 399, "
                   "doduc 257-275. Expect the same ordering: the dense "
                   "numeric codes\nsit orders of magnitude above the "
                   "branchy reactor simulation.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "instrs/break (self-predicted)",
                     "paper"});
    struct Ref
    {
        const char *program;
        const char *paper;
    };
    const Ref refs[] = {
        {"tomcatv", "7461"}, {"matrix300", "4853"}, {"nasa7", "3400"},
        {"fpppp", "951-1028"}, {"lfk", "399"}, {"doduc", "257-275"},
    };
    for (const auto &ref : refs) {
        for (const std::string &ds : runner.datasetNames(ref.program)) {
            double v = harness::selfPredictedPerBreak(runner, ref.program,
                                                      ds);
            table.addRow({ref.program, ds, bench::perBreak(v), ref.paper});
        }
    }
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

/**
 * @file
 * SELECT-lowering ablation (paper footnote 2): the Trace compiler front
 * ends converted simple ifs into a select instruction, suppressing a few
 * branches; the authors left this on and report selects were "typically
 * less than 0.2% (sometimes up to 0.3%, and in one case 0.7%) of all
 * instructions executed". This bench measures our select density and
 * what turning the lowering off does to branch counts and
 * predictability.
 */
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/str.h"
#include "vm/machine.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("SELECT lowering ablation",
                   "Fisher & Freudenberger 1992, footnote 2",
                   "Simple ?: expressions compile to SELECT (branch-free)."
                   " Paper: selects were\ntypically <0.2% of executed "
                   "instructions, up to 0.7%. Turning the lowering\noff "
                   "converts them back into conditional branches.");
    CompileOptions with_select = harness::Runner::experimentOptions();
    CompileOptions without_select = with_select;
    without_select.use_select = false;
    harness::Runner on(with_select);
    harness::Runner off(without_select);

    // One job per workload: each compiles (once per Runner) and runs
    // the primary dataset under both configurations.
    const auto &all = workloads::all();
    std::vector<std::array<std::string, 6>> rows(all.size());
    exec::parallelFor(exec::globalPool(), all.size(), [&](size_t i) {
        const auto &w = all[i];
        const std::string &dataset = w.datasets.front().name;
        const auto &stats_on = on.stats(w.name, dataset);
        const auto &stats_off = off.stats(w.name, dataset);

        auto self_per_break = [](harness::Runner &runner,
                                 const std::string &name,
                                 const vm::RunStats &stats) {
            profile::ProfileDb db(name,
                                  runner.program(name).fingerprint(),
                                  stats);
            predict::ProfilePredictor self(db);
            return metrics::breaksWithPredictor(stats, self)
                .instructionsPerBreak();
        };
        double pct_selects =
            100.0 * static_cast<double>(stats_on.selects) /
            static_cast<double>(stats_on.instructions);
        double extra_branches =
            100.0 * (static_cast<double>(stats_off.cond_branches) /
                         static_cast<double>(stats_on.cond_branches) -
                     1.0);
        rows[i] = {w.name, dataset, strPrintf("%.2f%%", pct_selects),
                   strPrintf("+%.1f%%", extra_branches),
                   bench::perBreak(self_per_break(on, w.name, stats_on)),
                   bench::perBreak(
                       self_per_break(off, w.name, stats_off))};
    });

    metrics::TextTable table;
    table.setHeader({"program", "dataset", "selects (% of instrs)",
                     "branches (+select off)", "instrs/break on",
                     "instrs/break off"});
    for (const auto &r : rows)
        table.addRow({r[0], r[1], r[2], r[3], r[4], r[5]});
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

/**
 * @file
 * SELECT-lowering ablation (paper footnote 2): the Trace compiler front
 * ends converted simple ifs into a select instruction, suppressing a few
 * branches; the authors left this on and report selects were "typically
 * less than 0.2% (sometimes up to 0.3%, and in one case 0.7%) of all
 * instructions executed". This bench measures our select density and
 * what turning the lowering off does to branch counts and
 * predictability.
 */
#include <cstdio>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/str.h"
#include "vm/machine.h"

using namespace ifprob;

int
main()
{
    bench::heading("SELECT lowering ablation",
                   "Fisher & Freudenberger 1992, footnote 2",
                   "Simple ?: expressions compile to SELECT (branch-free)."
                   " Paper: selects were\ntypically <0.2% of executed "
                   "instructions, up to 0.7%. Turning the lowering\noff "
                   "converts them back into conditional branches.");
    CompileOptions with_select = harness::Runner::experimentOptions();
    CompileOptions without_select = with_select;
    without_select.use_select = false;
    harness::Runner on(with_select);
    harness::Runner off(without_select);

    metrics::TextTable table;
    table.setHeader({"program", "dataset", "selects (% of instrs)",
                     "branches (+select off)", "instrs/break on",
                     "instrs/break off"});
    for (const auto &w : workloads::all()) {
        const std::string &dataset = w.datasets.front().name;
        const auto &stats_on = on.stats(w.name, dataset);
        const auto &stats_off = off.stats(w.name, dataset);

        auto self_per_break = [](harness::Runner &runner,
                                 const std::string &name,
                                 const vm::RunStats &stats) {
            profile::ProfileDb db(name,
                                  runner.program(name).fingerprint(),
                                  stats);
            predict::ProfilePredictor self(db);
            return metrics::breaksWithPredictor(stats, self)
                .instructionsPerBreak();
        };
        double pct_selects =
            100.0 * static_cast<double>(stats_on.selects) /
            static_cast<double>(stats_on.instructions);
        double extra_branches =
            100.0 * (static_cast<double>(stats_off.cond_branches) /
                         static_cast<double>(stats_on.cond_branches) -
                     1.0);
        table.addRow(
            {w.name, dataset, strPrintf("%.2f%%", pct_selects),
             strPrintf("+%.1f%%", extra_branches),
             bench::perBreak(self_per_break(on, w.name, stats_on)),
             bench::perBreak(
                 self_per_break(off, w.name, stats_off))});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

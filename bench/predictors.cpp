/**
 * @file
 * The predictor-zoo tournament (docs/predictors.md, ROADMAP item 1):
 * every scheme in predict/zoo — the paper's 1992 profile/static
 * predictors and the dynamic lineage that followed (Smith counters,
 * two-level, gshare, perceptron, TAGE) — scored on the same recorded
 * traces and ranked on the paper's own units: mispredict rate and
 * instructions per mispredict.
 *
 * Default mode replays the full (workload, dataset) matrix, each trace
 * decoded exactly once and fanned out to the whole roster, parallel
 * across cells on the exec pool. The table is deterministic (counts
 * only), so CI byte-diffs it at jobs=1 vs jobs=4 and with
 * IFPROB_TRACE_BATCH=off.
 *
 * `predictors --ab` is the perf smoke: it times the batched zoo
 * fan-out (one decode, N onBatch kernels per block) against the same
 * roster run as scalar per-event observers (IFPROB_TRACE_BATCH=off),
 * plus a standalone replay per predictor for ns/event, and writes
 * BENCH_predictors.json ("ifprob.predictors.v1" JSONL: one record per
 * predictor plus a rollup). Exits nonzero when the batched/scalar
 * ratio falls below --min-zoo-speedup (0 disables).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "metrics/report.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "predict/zoo/scheduler.h"
#include "predict/zoo/zoo.h"
#include "support/str.h"
#include "trace/trace.h"

namespace {

using namespace ifprob;

/** Set-and-restore guard for one environment variable. */
struct EnvGuard
{
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** Roster indexes ranked by ascending mispredicts (every member scores
 *  the same branch stream, so this is accuracy order); roster order
 *  breaks ties deterministically. */
std::vector<size_t>
rankByMispredicts(const std::vector<predict::zoo::PredictorScore> &scores)
{
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a].mispredicts < scores[b].mispredicts;
    });
    return order;
}

std::string
instrPerMispredictCell(const predict::zoo::PredictorScore &score,
                       int64_t instructions)
{
    if (score.mispredicts <= 0)
        return "—";
    return bench::perBreak(score.instructionsPerMispredict(instructions));
}

/** One fan-out replay of @p trace through fresh roster instances;
 *  returns the predictors so callers can harvest scores. */
std::vector<std::unique_ptr<predict::DynamicPredictor>>
replayRoster(const harness::Runner &, const trace::Trace &trace,
             const predict::zoo::ZooContext &context,
             const std::vector<predict::zoo::ZooSpec> &zoo)
{
    std::vector<std::unique_ptr<predict::DynamicPredictor>> predictors;
    std::vector<vm::BranchObserver *> observers;
    predictors.reserve(zoo.size());
    observers.reserve(zoo.size());
    for (const auto &spec : zoo) {
        predictors.push_back(spec.make(context));
        observers.push_back(predictors.back().get());
    }
    trace::replay(trace, observers);
    return predictors;
}

int
runTournamentMode()
{
    bench::heading(
        "Predictor-zoo tournament",
        "profile-guided static prediction vs the dynamic lineage",
        "Every zoo scheme over the full (workload, dataset) matrix — "
        "one decode per trace,\nN predictors per block — ranked on "
        "aggregate mispredict rate and the paper's\ninstructions-per-"
        "mispredict (i/mp). The 1992 static schemes compete in the "
        "same\ntable as the hardware lineage that followed them.");

    harness::Runner runner;
    const auto cells = predict::zoo::allCells();
    const auto &zoo = predict::zoo::defaultZoo();
    const auto results = predict::zoo::runTournament(runner, cells, zoo);

    int64_t instructions = 0;
    const auto scores = predict::zoo::aggregate(results, zoo, &instructions);

    metrics::TextTable table;
    table.setHeader({"rank", "predictor", "family", "kind", "mispredict",
                     "i/mp", "mispredicts"});
    const auto order = rankByMispredicts(scores);
    for (size_t rank = 0; rank < order.size(); ++rank) {
        const auto &score = scores[order[rank]];
        table.addRow({strPrintf("%zu", rank + 1), score.name,
                      score.family, score.dynamic ? "dynamic" : "static",
                      strPrintf("%.2f%%", score.mispredictPercent()),
                      instrPerMispredictCell(score, instructions),
                      withCommas(score.mispredicts)});
    }
    bench::emitTable("predictors", table);
    std::printf("  %zu cells, %s instructions per predictor\n",
                cells.size(), withCommas(instructions).c_str());
    bench::footer();
    return 0;
}

int
runAbMode(double min_zoo_speedup, const std::string &out_path)
{
    const int kRepetitions = bench::kBestOfRepetitions;
    const int kStandaloneReps = 3;
    const auto &zoo = predict::zoo::defaultZoo();

    std::printf("predictors --ab: batched zoo fan-out vs scalar "
                "per-event observers (min_zoo_speedup=%.2f, %zu "
                "predictors)\n\n",
                min_zoo_speedup, zoo.size());

    harness::Runner runner;
    const auto cells = predict::zoo::primaryCells();

    // Warm every trace (record or disk load) before any timing: both
    // phases replay the same memoized streams.
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        runner.traceOf(cells[i].workload, cells[i].dataset);
    });

    // Untimed accuracy pass: the tournament metrics the JSON reports.
    const auto results = predict::zoo::runTournament(runner, cells, zoo);
    int64_t instructions = 0;
    const auto scores = predict::zoo::aggregate(results, zoo, &instructions);
    int64_t events_total = 0;
    for (const auto &cell : results)
        events_total += cell.branch_events;

    auto sweep = [&] {
        for (const auto &cell : cells) {
            const trace::Trace &trace =
                runner.traceOf(cell.workload, cell.dataset);
            const predict::zoo::ZooContext context{
                runner.program(cell.workload), trace.stats,
                trace.fingerprint, cell.workload};
            replayRoster(runner, trace, context, zoo);
        }
    };

    EnvGuard batch_guard("IFPROB_TRACE_BATCH");

    // A: one decode per block, N batch kernels (the zoo scheduler path).
    ::setenv("IFPROB_TRACE_BATCH", "1", 1);
    const int64_t batched_best =
        bench::bestOfMicros([](int) {}, sweep, kRepetitions);

    // B: the same roster as scalar observers — every event delivered
    // through N virtual onBranch calls (predict + update per event).
    ::setenv("IFPROB_TRACE_BATCH", "off", 1);
    const int64_t scalar_best =
        bench::bestOfMicros([](int) {}, sweep, kRepetitions);

    // Standalone ns/event per predictor, batched (decode included).
    ::setenv("IFPROB_TRACE_BATCH", "1", 1);
    std::vector<int64_t> standalone_micros(zoo.size(), 0);
    for (size_t p = 0; p < zoo.size(); ++p) {
        standalone_micros[p] = bench::bestOfMicros(
            [](int) {},
            [&] {
                for (const auto &cell : cells) {
                    const trace::Trace &trace =
                        runner.traceOf(cell.workload, cell.dataset);
                    const predict::zoo::ZooContext context{
                        runner.program(cell.workload), trace.stats,
                        trace.fingerprint, cell.workload};
                    auto predictor = zoo[p].make(context);
                    trace::replay(trace, *predictor);
                }
            },
            kStandaloneReps);
    }

    const double zoo_speedup =
        batched_best > 0 ? static_cast<double>(scalar_best) /
                               static_cast<double>(batched_best)
                         : 0.0;
    const bool ok =
        min_zoo_speedup <= 0.0 || zoo_speedup >= min_zoo_speedup;

    auto nsPerEvent = [&](int64_t micros) {
        return events_total > 0 ? 1000.0 * static_cast<double>(micros) /
                                      static_cast<double>(events_total)
                                : 0.0;
    };

    std::printf("  %zu cells, %s branch events/predictor, %zu-way "
                "fan-out\n",
                cells.size(), withCommas(events_total).c_str(),
                zoo.size());
    std::printf("  batched zoo  %8.1f ms   %6.2f ns/event/predictor  "
                "(one decode, N kernels, best of %d)\n",
                static_cast<double>(batched_best) / 1e3,
                nsPerEvent(batched_best) /
                    static_cast<double>(zoo.size()),
                kRepetitions);
    std::printf("  scalar zoo   %8.1f ms   %6.2f ns/event/predictor  "
                "(N virtual calls/event, best of %d)\n",
                static_cast<double>(scalar_best) / 1e3,
                nsPerEvent(scalar_best) / static_cast<double>(zoo.size()),
                kRepetitions);
    std::printf("  zoo speedup  %.2fx\n\n", zoo_speedup);

    std::printf("  %-18s %-12s %10s %12s %14s\n", "predictor", "family",
                "mispredict", "i/mp", "ns/event");
    obs::enableRunReportsDefault("bench/out");
    auto &sink = obs::ReportSink::global();
    std::string jsonl;
    for (size_t rank_index :
         rankByMispredicts(scores)) {
        const auto &score = scores[rank_index];
        obs::JsonObject record;
        record.field("schema", "ifprob.predictors.v1")
            .field("predictor", score.name)
            .field("family", score.family)
            .field("kind", score.dynamic ? "dynamic" : "static")
            .field("branches", score.branches)
            .field("mispredicts", score.mispredicts)
            .field("mispredict_pct", score.mispredictPercent())
            .field("instr_per_mispredict",
                   score.instructionsPerMispredict(instructions))
            .field("ns_per_event",
                   nsPerEvent(standalone_micros[rank_index]));
        jsonl += record.str();
        jsonl += "\n";
        if (sink.enabled())
            sink.writeLine(record.str());
        std::printf("  %-18s %-12s %9.2f%% %12s %11.2f\n",
                    score.name.c_str(), score.family.c_str(),
                    score.mispredictPercent(),
                    instrPerMispredictCell(score, instructions).c_str(),
                    nsPerEvent(standalone_micros[rank_index]));
    }

    obs::JsonObject rollup;
    rollup.field("schema", "ifprob.predictors.v1")
        .field("predictors", static_cast<int64_t>(zoo.size()))
        .field("cells", static_cast<int64_t>(cells.size()))
        .field("jobs", int64_t{exec::plannedJobs()})
        .field("repetitions", int64_t{kRepetitions})
        .field("events_total", events_total)
        .field("instructions", instructions)
        .field("batched_micros", batched_best)
        .field("scalar_micros", scalar_best)
        .field("zoo_speedup", zoo_speedup)
        .field("min_zoo_speedup", min_zoo_speedup)
        .field("pass", int64_t{ok ? 1 : 0});
    jsonl += rollup.str();
    jsonl += "\n";
    if (sink.enabled())
        sink.writeLine(rollup.str());

    // BENCH_predictors.json is JSONL: per-predictor records plus the
    // rollup, in rank order (emitBenchRecord writes single-line files,
    // so this bench writes its own).
    {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << jsonl;
    }
    std::printf("\n  wrote %s\n", out_path.c_str());

    std::printf("  zoo speedup %.2fx (bar %.2fx): %s\n", zoo_speedup,
                min_zoo_speedup, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_predictors.json");
    ifprob::bench::initJobs(argc, argv);
    if (flags.ab)
        return runAbMode(flags.min_zoo_speedup, flags.out_path);
    return runTournamentMode();
}

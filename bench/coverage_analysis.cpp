/**
 * @file
 * The paper's open question, answered with this infrastructure: when a
 * dataset predicts another badly, is it because branches *flip
 * direction*, or because the predictor *never exercised* the code the
 * target runs ("coverage")? The authors "tried many schemes" and found
 * nothing that correlated. This bench correlates prediction loss against
 * both candidate explanations across every dataset pair.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "support/str.h"

using namespace ifprob;

namespace {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    size_t n = x.size();
    if (n < 2)
        return 0.0;
    double mx = 0, my = 0;
    for (size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx <= 0 || syy <= 0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Coverage vs direction-flip analysis",
                   "Fisher & Freudenberger 1992, §3 \"Coverage\"",
                   "For every predictor/target pair: prediction loss "
                   "(100% - quality) against\n(a) coverage gap (target "
                   "branches at predictor-unseen sites) and\n(b) "
                   "direction disagreement at mutually-covered sites. "
                   "The paper suspected (a)\nbut could not quantify it; "
                   "the correlations below are this harness's answer.");
    harness::Runner runner;
    auto rows = harness::coverageStudy(runner);

    // Show the 12 worst pairs in detail.
    auto sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.quality_pct < b.quality_pct;
              });
    metrics::TextTable table;
    table.setHeader({"program", "target", "predictor", "quality",
                     "coverage gap", "direction flips"});
    for (size_t i = 0; i < sorted.size() && i < 12; ++i) {
        const auto &r = sorted[i];
        table.addRow({r.program, r.target, r.predictor,
                      strPrintf("%.0f%%", r.quality_pct),
                      strPrintf("%.1f%%", r.coverage_gap_pct),
                      strPrintf("%.1f%%", r.disagreement_pct)});
    }
    std::printf("12 worst predictor/target pairs:\n%s\n",
                table.render().c_str());

    std::vector<double> loss, gap, flips;
    for (const auto &r : rows) {
        loss.push_back(100.0 - r.quality_pct);
        gap.push_back(r.coverage_gap_pct);
        flips.push_back(r.disagreement_pct);
    }
    std::printf("across %zu dataset pairs:\n", rows.size());
    std::printf("  corr(prediction loss, coverage gap)      = %+.2f\n",
                pearson(loss, gap));
    std::printf("  corr(prediction loss, direction flips)   = %+.2f\n\n",
                pearson(loss, flips));
    bench::footer();
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks for the analysis plane: the O(n)
 * leave-one-out table against the O(n^2) per-target re-merge it
 * replaced, and the SoA mispredict kernel against virtual-dispatch
 * predict::evaluate. These guard the analysis layer's performance the
 * way micro_vm guards the interpreter's.
 *
 * `micro_analysis --ab` bypasses the benchmark framework and runs the
 * analysis-plane A/B comparison directly: with every (workload, dataset)
 * run's statistics pre-warmed (so the VM is excluded from every
 * measurement), it times the figure2 + figure3 + coverage analysis phase
 * under IFPROB_ANALYSIS=reference and under the default AnalysisCache
 * path (cold — AnalysisCache dropped between repetitions — and warm),
 * writes BENCH_analysis.json (plus a mirrored "ifprob.analysis_bench.v1"
 * line through the run-report sink), and exits nonzero if the cold
 * cached path fails the --min-speedup bar (default 1.0 — i.e. the cache
 * must never be slower than the path it replaced). CI runs this as the
 * analysis perf-smoke step.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis_cache.h"
#include "bench_util.h"
#include "analysis/loo.h"
#include "analysis/soa.h"
#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/experiments.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 50000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

std::vector<profile::ProfileDb>
kernelProfiles(int n)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    std::vector<profile::ProfileDb> dbs;
    for (int i = 0; i < n; ++i)
        dbs.emplace_back("kernel", p.fingerprint(), stats);
    return dbs;
}

void
BM_LeaveOneOutTable(benchmark::State &state)
{
    auto dbs = kernelProfiles(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto table =
            analysis::leaveOneOutTable(dbs, profile::MergeMode::kScaled);
        benchmark::DoNotOptimize(table.directions.size());
    }
}
BENCHMARK(BM_LeaveOneOutTable)->Arg(4)->Arg(8)->Arg(16);

void
BM_ReferenceRemerge(benchmark::State &state)
{
    // The O(n^2) shape leaveOneOutTable replaced: one full merge of the
    // remaining n-1 databases per leave-one-out target.
    auto dbs = kernelProfiles(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        for (size_t t = 0; t < dbs.size(); ++t) {
            std::vector<profile::ProfileDb> others;
            for (size_t j = 0; j < dbs.size(); ++j) {
                if (j != t)
                    others.push_back(dbs[j]);
            }
            auto merged = profile::ProfileDb::merge(
                others, profile::MergeMode::kScaled);
            benchmark::DoNotOptimize(merged.totalExecuted());
        }
    }
}
BENCHMARK(BM_ReferenceRemerge)->Arg(4)->Arg(8)->Arg(16);

void
BM_MispredictsLowered(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    auto counts = analysis::SiteCounts::fromStats(stats);
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    auto dir = predict::lowerPredictor(predictor, counts.size());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis::mispredictsLowered(counts, dir));
    }
}
BENCHMARK(BM_MispredictsLowered);

void
BM_PredictorEvaluate(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto q = predict::evaluate(stats, predictor);
        benchmark::DoNotOptimize(q.mispredicted);
    }
}
BENCHMARK(BM_PredictorEvaluate);

// ---------------------------------------------------------------------------
// --ab mode: reference vs cached analysis plane, BENCH_analysis.json.
// ---------------------------------------------------------------------------

/** setenv/unsetenv with restore; the bench owns the process env. */
struct EnvGuard
{
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** The analysis phase under measurement: every experiment whose cost is
 *  dominated by profile merging and predictor evaluation. */
void
analysisPhase(harness::Runner &runner)
{
    benchmark::DoNotOptimize(harness::figure2(runner).size());
    benchmark::DoNotOptimize(harness::figure3(runner).size());
    benchmark::DoNotOptimize(harness::coverageStudy(runner).size());
}

int
runAbMode(double min_speedup, const std::string &out_path)
{
    const int kRepetitions = bench::kBestOfRepetitions;

    std::printf("micro_analysis --ab: reference vs cached analysis "
                "plane (min_speedup=%.2f)\n\n",
                min_speedup);

    harness::Runner runner;

    // Warm every run's statistics first so the VM (and the stats disk
    // cache) is excluded from all three measurements below.
    std::vector<std::pair<std::string, std::string>> cells;
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets)
            cells.emplace_back(w.name, d.name);
    }
    const int64_t warm0 = obs::nowMicros();
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        runner.stats(cells[i].first, cells[i].second);
    });
    const int64_t warm_micros = obs::nowMicros() - warm0;
    const harness::CacheStats warm_cache = runner.cacheStats();

    EnvGuard guard("IFPROB_ANALYSIS");

    // Reference path: the original per-call merge/evaluate plane. It
    // memoizes nothing, so plain repetitions measure steady state.
    ::setenv("IFPROB_ANALYSIS", "reference", 1);
    const int64_t ref_best = bench::bestOfMicros(
        [](int) {}, [&] { analysisPhase(runner); }, kRepetitions);

    // Cached path, cold: drop the AnalysisCache before each repetition
    // so every materialization (profiles, SoA arrays, leave-one-out
    // tables) is paid inside the measurement.
    ::unsetenv("IFPROB_ANALYSIS");
    const int64_t cold_best = bench::bestOfMicros(
        [&](int) { runner.resetAnalysis(); },
        [&] { analysisPhase(runner); }, kRepetitions);

    // Cached path, warm: everything already materialized.
    const int64_t warm_best = bench::bestOfMicros(
        [](int) {}, [&] { analysisPhase(runner); }, kRepetitions);

    const double speedup_cold =
        cold_best > 0 ? static_cast<double>(ref_best) /
                            static_cast<double>(cold_best)
                      : 0.0;
    const double speedup_warm =
        warm_best > 0 ? static_cast<double>(ref_best) /
                            static_cast<double>(warm_best)
                      : 0.0;
    const bool ok = speedup_cold >= min_speedup;

    std::printf("  stats warmup  %8.1f ms  (cache: %lld binary hits, "
                "%lld text hits, %lld misses)\n",
                static_cast<double>(warm_micros) / 1e3,
                static_cast<long long>(warm_cache.binary_hits),
                static_cast<long long>(warm_cache.text_hits),
                static_cast<long long>(warm_cache.misses));
    std::printf("  reference     %8.1f ms   (best of %d)\n",
                static_cast<double>(ref_best) / 1e3, kRepetitions);
    std::printf("  cached cold   %8.1f ms   speedup %5.2fx\n",
                static_cast<double>(cold_best) / 1e3, speedup_cold);
    std::printf("  cached warm   %8.1f ms   speedup %5.2fx\n",
                static_cast<double>(warm_best) / 1e3, speedup_warm);

    obs::JsonObject json;
    json.field("schema", "ifprob.analysis_bench.v1")
        .field("min_speedup", min_speedup)
        .field("repetitions", int64_t{kRepetitions})
        .field("jobs", int64_t{exec::plannedJobs()})
        .field("warmup_micros", warm_micros)
        .field("reference_micros", ref_best)
        .field("cached_cold_micros", cold_best)
        .field("cached_warm_micros", warm_best)
        .field("speedup_cold", speedup_cold)
        .field("speedup_warm", speedup_warm)
        .field("stats_cache_binary_hits", warm_cache.binary_hits)
        .field("stats_cache_text_hits", warm_cache.text_hits)
        .field("stats_cache_misses", warm_cache.misses)
        .field("loo_builds", obs::counter("analysis.loo_builds").value())
        .field("exact_refolds",
               obs::counter("analysis.exact_refolds").value())
        .field("kernel_invocations",
               obs::counter("analysis.kernel_invocations").value())
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        return 1;

    std::printf("  cold speedup %.2fx: %s\n", speedup_cold,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_analysis.json");
    if (flags.ab)
        return runAbMode(flags.min_speedup, flags.out_path);

    int bench_argc = static_cast<int>(flags.passthrough.size());
    benchmark::Initialize(&bench_argc, flags.passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               flags.passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Trace selection under different predictors — the downstream consumer
 * the paper motivates. [Chang, Mahlke & Hwu 92] (cited in the paper's
 * related work) report that trace selection is "greatly improved by
 * feedback methods"; this bench measures it on our suite: the expected
 * candidate-set size (execution-weighted trace length) a trace scheduler
 * obtains with profile feedback vs compile-time heuristics.
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "ilp/trace.h"
#include "metrics/report.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "support/str.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Trace selection: feedback vs heuristics",
                   "Chang/Mahlke/Hwu 92 cross-check (paper related work)",
                   "Estimated dynamic instructions per trace exit from greedy\n"
                   "mutual-most-likely trace growing: how long execution "
                   "stays on the\nselected trace. Feedback-guided selection "
                   "should beat compile-time\nheuristics.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "profile feedback",
                     "backward-taken", "always-not-taken",
                     "feedback advantage"});
    double log_ratio_sum = 0.0;
    int count = 0;
    for (const auto &w : workloads::all()) {
        const auto &dataset = w.datasets.front();
        const isa::Program &prog = runner.program(w.name);
        profile::ProfileDb db =
            harness::profileOf(runner, w.name, dataset.name);
        predict::ProfilePredictor feedback(db);
        predict::HeuristicPredictor backward(
            prog, predict::Heuristic::kBackwardTaken);
        predict::HeuristicPredictor never(
            prog, predict::Heuristic::kAlwaysNotTaken);

        double with_feedback =
            ilp::selectTraces(prog, feedback, db).instructionsPerExit();
        double with_backward =
            ilp::selectTraces(prog, backward, db).instructionsPerExit();
        double with_never =
            ilp::selectTraces(prog, never, db).instructionsPerExit();
        double ratio = with_backward > 0.0 ? with_feedback / with_backward
                                           : 1.0;
        log_ratio_sum += std::log(ratio);
        ++count;
        table.addRow({w.name, dataset.name,
                      strPrintf("%.1f", with_feedback),
                      strPrintf("%.1f", with_backward),
                      strPrintf("%.1f", with_never),
                      strPrintf("%.2fx", ratio)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean feedback advantage over backward-taken: %.2fx\n\n",
                std::exp(log_ratio_sum / count));
    bench::footer();
    return 0;
}

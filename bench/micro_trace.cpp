/**
 * @file
 * google-benchmark microbenchmarks for the branch-trace plane
 * (docs/trace.md): recording overhead versus an unobserved run, replay
 * throughput through one observer and through a three-way fan-out, and
 * the encode/decode round-trip.
 *
 * `micro_trace --ab` bypasses the benchmark framework and runs the
 * trace-plane A/B comparison directly over the full workload matrix
 * (primary datasets): it times the historical live-observed path — one
 * VM execution per dynamic predictor — against the trace plane cold
 * (record + replay), warm (disk-cache load + replay), and hot
 * (memoized replay only), writes BENCH_trace.json (plus a mirrored
 * "ifprob.trace_bench.v1" line through the run-report sink), and exits
 * nonzero if the cold path fails the --min-speedup bar (default 1.0 —
 * the trace plane must never be slower than the path it replaced). CI
 * runs this as the trace perf-smoke step.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "predict/dynamic_predictor.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 50000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

trace::Trace
kernelTrace()
{
    isa::Program p = compile(kBranchKernel);
    return trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
}

void
BM_RecordRun(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    for (auto _ : state) {
        trace::Trace t =
            trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
        benchmark::DoNotOptimize(t.events);
    }
}
BENCHMARK(BM_RecordRun);

void
BM_UnobservedRun(benchmark::State &state)
{
    // The recording overhead baseline: the same run with no observer.
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    for (auto _ : state) {
        auto result = m.run("");
        benchmark::DoNotOptimize(result.stats.instructions);
    }
}
BENCHMARK(BM_UnobservedRun);

void
BM_LiveObservedRun(benchmark::State &state)
{
    // The path replay replaces: a full VM execution per observer.
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    for (auto _ : state) {
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        auto result = m.run("", vm::RunLimits{}, &two_bit);
        benchmark::DoNotOptimize(two_bit.percentCorrect());
        benchmark::DoNotOptimize(result.stats.instructions);
    }
}
BENCHMARK(BM_LiveObservedRun);

void
BM_ReplaySingle(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        trace::replay(t, two_bit);
        benchmark::DoNotOptimize(two_bit.percentCorrect());
    }
    state.SetItemsProcessed(state.iterations() * t.events);
}
BENCHMARK(BM_ReplaySingle);

void
BM_ReplayFanOut3(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        predict::OneBitPredictor one_bit(p.branch_sites.size());
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        predict::GSharePredictor gshare(12, 12);
        trace::replay(t, {&one_bit, &two_bit, &gshare});
        benchmark::DoNotOptimize(two_bit.percentCorrect());
    }
    state.SetItemsProcessed(state.iterations() * t.events);
}
BENCHMARK(BM_ReplayFanOut3);

void
BM_TraceRoundTrip(benchmark::State &state)
{
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        std::ostringstream os(std::ios::binary);
        t.save(os);
        std::istringstream is(os.str(), std::ios::binary);
        trace::Trace back = trace::Trace::load(is);
        benchmark::DoNotOptimize(back.events);
    }
    state.SetBytesProcessed(state.iterations() * t.byteSize());
}
BENCHMARK(BM_TraceRoundTrip);

// ---------------------------------------------------------------------------
// --ab mode: live-observed vs trace replay, BENCH_trace.json.
// ---------------------------------------------------------------------------

/** setenv/unsetenv with restore; the bench owns the process env. */
struct EnvGuard
{
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** The workload matrix under measurement: every primary dataset. */
std::vector<std::pair<std::string, std::string>>
primaryCells()
{
    std::vector<std::pair<std::string, std::string>> cells;
    for (const auto &w : workloads::all())
        cells.emplace_back(w.name, w.datasets.front().name);
    return cells;
}

/** Simulate the dynamic_baselines predictor set over one cell, from a
 *  recorded trace. */
void
replayCell(harness::Runner &runner, const std::string &workload,
           const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    const trace::Trace &t = runner.traceOf(workload, dataset);
    predict::OneBitPredictor one_bit(prog.branch_sites.size());
    predict::TwoBitPredictor two_bit(prog.branch_sites.size());
    predict::GSharePredictor gshare(12, 12);
    trace::replay(t, {&one_bit, &two_bit, &gshare});
    benchmark::DoNotOptimize(two_bit.percentCorrect());
}

/** The same predictor set fed live: one VM execution per observer. */
void
liveCell(harness::Runner &runner, const std::string &workload,
         const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    const auto &input =
        workloads::get(workload).datasets.front().input;
    predict::OneBitPredictor one_bit(prog.branch_sites.size());
    predict::TwoBitPredictor two_bit(prog.branch_sites.size());
    predict::GSharePredictor gshare(12, 12);
    vm::Machine machine(prog);
    vm::RunLimits limits = bench::defaultLimits();
    machine.run(input, limits, &one_bit);
    machine.run(input, limits, &two_bit);
    machine.run(input, limits, &gshare);
    benchmark::DoNotOptimize(two_bit.percentCorrect());
    (void)dataset;
}

/** Delete the on-disk traces so the next traceOf re-records. */
void
dropTraceFiles(const std::string &cache_dir)
{
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache_dir, ec)) {
        if (entry.path().extension() == ".trace")
            std::filesystem::remove(entry.path(), ec);
    }
}

int
runAbMode(double min_speedup, const std::string &out_path)
{
    const int kRepetitions = 3;

    std::printf("micro_trace --ab: live-observed vs trace replay "
                "(min_speedup=%.2f)\n\n",
                min_speedup);

    // A private cache directory: the stats cache warms normally, but
    // trace cold/warm phases control their own .trace files.
    EnvGuard cache_guard("IFPROB_CACHE");
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("ifprob-trace-ab-" + std::to_string(::getpid())))
            .string();
    std::filesystem::create_directories(cache_dir);
    ::setenv("IFPROB_CACHE", cache_dir.c_str(), 1);

    harness::Runner runner;
    const auto cells = primaryCells();

    // Compile everything up front so the live phase measures execution,
    // not compilation.
    for (const auto &[w, d] : cells)
        runner.program(w);

    // Live phase: the historical path — one VM execution per predictor.
    int64_t live_best = 0;
    for (int i = 0; i < kRepetitions; ++i) {
        const int64_t t0 = obs::nowMicros();
        for (const auto &[w, d] : cells)
            liveCell(runner, w, d);
        const int64_t micros = obs::nowMicros() - t0;
        live_best = live_best == 0 ? micros : std::min(live_best, micros);
    }

    // Cold: record once + replay the three predictors. Trace files and
    // the in-memory memo are dropped before each repetition, so every
    // repetition pays one full execution plus encode per cell.
    int64_t cold_best = 0;
    for (int i = 0; i < kRepetitions; ++i) {
        dropTraceFiles(cache_dir);
        runner.resetTraces();
        const int64_t t0 = obs::nowMicros();
        for (const auto &[w, d] : cells)
            replayCell(runner, w, d);
        const int64_t micros = obs::nowMicros() - t0;
        cold_best = cold_best == 0 ? micros : std::min(cold_best, micros);
    }

    // Warm: the memo is dropped but the .trace files survive, so each
    // cell is a disk load + replay — the steady state across bench
    // binaries sharing one cache directory.
    int64_t warm_best = 0;
    for (int i = 0; i < kRepetitions; ++i) {
        runner.resetTraces();
        const int64_t t0 = obs::nowMicros();
        for (const auto &[w, d] : cells)
            replayCell(runner, w, d);
        const int64_t micros = obs::nowMicros() - t0;
        warm_best = warm_best == 0 ? micros : std::min(warm_best, micros);
    }

    // Hot: traces memoized in memory — replay cost only, the steady
    // state within one binary.
    int64_t hot_best = 0;
    for (int i = 0; i < kRepetitions; ++i) {
        const int64_t t0 = obs::nowMicros();
        for (const auto &[w, d] : cells)
            replayCell(runner, w, d);
        const int64_t micros = obs::nowMicros() - t0;
        hot_best = hot_best == 0 ? micros : std::min(hot_best, micros);
    }

    int64_t events_total = 0;
    int64_t trace_bytes_total = 0;
    for (const auto &[w, d] : cells) {
        const trace::Trace &t = runner.traceOf(w, d);
        events_total += t.events;
        trace_bytes_total += t.byteSize();
    }

    const harness::CacheStats cache = runner.cacheStats();
    auto speedup = [&](int64_t micros) {
        return micros > 0 ? static_cast<double>(live_best) /
                                static_cast<double>(micros)
                          : 0.0;
    };
    const double speedup_cold = speedup(cold_best);
    const double speedup_warm = speedup(warm_best);
    const double speedup_hot = speedup(hot_best);
    const bool ok = speedup_cold >= min_speedup;

    std::printf("  %zu cells, %lld events, %.1f MiB encoded "
                "(%.2f bytes/event)\n",
                cells.size(), static_cast<long long>(events_total),
                static_cast<double>(trace_bytes_total) / (1024.0 * 1024.0),
                events_total > 0
                    ? static_cast<double>(trace_bytes_total) /
                          static_cast<double>(events_total)
                    : 0.0);
    std::printf("  live observed %8.1f ms   (3 executions/cell, best "
                "of %d)\n",
                static_cast<double>(live_best) / 1e3, kRepetitions);
    std::printf("  trace cold    %8.1f ms   speedup %5.2fx  (record + "
                "replay)\n",
                static_cast<double>(cold_best) / 1e3, speedup_cold);
    std::printf("  trace warm    %8.1f ms   speedup %5.2fx  (disk load "
                "+ replay)\n",
                static_cast<double>(warm_best) / 1e3, speedup_warm);
    std::printf("  trace hot     %8.1f ms   speedup %5.2fx  (replay "
                "only)\n",
                static_cast<double>(hot_best) / 1e3, speedup_hot);

    obs::JsonObject json;
    json.field("schema", "ifprob.trace_bench.v1")
        .field("min_speedup", min_speedup)
        .field("repetitions", int64_t{kRepetitions})
        .field("jobs", int64_t{exec::plannedJobs()})
        .field("cells", static_cast<int64_t>(cells.size()))
        .field("events_total", events_total)
        .field("trace_bytes_total", trace_bytes_total)
        .field("live_micros", live_best)
        .field("cold_micros", cold_best)
        .field("warm_micros", warm_best)
        .field("hot_micros", hot_best)
        .field("speedup_cold", speedup_cold)
        .field("speedup_warm", speedup_warm)
        .field("speedup_hot", speedup_hot)
        .field("trace_cache_hits", cache.trace_hits)
        .field("trace_cache_misses", cache.trace_misses)
        .field("trace_cache_read_failures", cache.trace_read_failures)
        .field("trace_cache_bytes_read", cache.trace_bytes_read)
        .field("trace_cache_bytes_written", cache.trace_bytes_written)
        .field("replay_events",
               obs::counter("trace.replay_events").value())
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        return 1;

    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    std::printf("  cold speedup %.2fx: %s\n", speedup_cold,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_trace.json");
    if (flags.ab)
        return runAbMode(flags.min_speedup, flags.out_path);

    int bench_argc = static_cast<int>(flags.passthrough.size());
    benchmark::Initialize(&bench_argc, flags.passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               flags.passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

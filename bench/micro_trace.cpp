/**
 * @file
 * google-benchmark microbenchmarks for the branch-trace plane
 * (docs/trace.md): recording overhead versus an unobserved run, replay
 * throughput through one observer and through a three-way fan-out, and
 * the encode/decode round-trip.
 *
 * `micro_trace --ab` bypasses the benchmark framework and runs the
 * trace-plane A/B comparison directly over the full workload matrix
 * (primary datasets): it times the historical live-observed path — one
 * VM execution per dynamic predictor — against the trace plane cold
 * (record + replay), warm (disk-cache load + replay), and hot
 * (memoized replay only), plus the counting-observer path (one
 * analysis::SiteCountObserver, live vs hot replay — the profile
 * consumer the batched replay engine is tuned for). It writes
 * BENCH_trace.json (plus a mirrored "ifprob.trace_bench.v2" line
 * through the run-report sink, with per-phase block-decode and
 * dispatch micros from the replay.* counters), and exits nonzero if
 * the cold path fails the --min-speedup bar (default 1.0 — the trace
 * plane must never be slower than the path it replaced) or the
 * counting-observer hot path fails --min-hot-speedup vs live (0
 * disables). CI runs this as the trace perf-smoke step.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/soa.h"
#include "bench_util.h"
#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "predict/dynamic_predictor.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 50000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

trace::Trace
kernelTrace()
{
    isa::Program p = compile(kBranchKernel);
    return trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
}

void
BM_RecordRun(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    for (auto _ : state) {
        trace::Trace t =
            trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
        benchmark::DoNotOptimize(t.events);
    }
}
BENCHMARK(BM_RecordRun);

void
BM_UnobservedRun(benchmark::State &state)
{
    // The recording overhead baseline: the same run with no observer.
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    for (auto _ : state) {
        auto result = m.run("");
        benchmark::DoNotOptimize(result.stats.instructions);
    }
}
BENCHMARK(BM_UnobservedRun);

void
BM_LiveObservedRun(benchmark::State &state)
{
    // The path replay replaces: a full VM execution per observer.
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    for (auto _ : state) {
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        auto result = m.run("", vm::RunLimits{}, &two_bit);
        benchmark::DoNotOptimize(two_bit.percentCorrect());
        benchmark::DoNotOptimize(result.stats.instructions);
    }
}
BENCHMARK(BM_LiveObservedRun);

void
BM_ReplaySingle(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        trace::replay(t, two_bit);
        benchmark::DoNotOptimize(two_bit.percentCorrect());
    }
    state.SetItemsProcessed(state.iterations() * t.events);
}
BENCHMARK(BM_ReplaySingle);

void
BM_ReplayFanOut3(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        predict::OneBitPredictor one_bit(p.branch_sites.size());
        predict::TwoBitPredictor two_bit(p.branch_sites.size());
        predict::GSharePredictor gshare(12, 12);
        trace::replay(t, {&one_bit, &two_bit, &gshare});
        benchmark::DoNotOptimize(two_bit.percentCorrect());
    }
    state.SetItemsProcessed(state.iterations() * t.events);
}
BENCHMARK(BM_ReplayFanOut3);

void
BM_TraceRoundTrip(benchmark::State &state)
{
    trace::Trace t = kernelTrace();
    for (auto _ : state) {
        std::ostringstream os(std::ios::binary);
        t.save(os);
        std::istringstream is(os.str(), std::ios::binary);
        trace::Trace back = trace::Trace::load(is);
        benchmark::DoNotOptimize(back.events);
    }
    state.SetBytesProcessed(state.iterations() * t.byteSize());
}
BENCHMARK(BM_TraceRoundTrip);

// ---------------------------------------------------------------------------
// --ab mode: live-observed vs trace replay, BENCH_trace.json.
// ---------------------------------------------------------------------------

/** setenv/unsetenv with restore; the bench owns the process env. */
struct EnvGuard
{
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** The workload matrix under measurement: every primary dataset. */
std::vector<std::pair<std::string, std::string>>
primaryCells()
{
    std::vector<std::pair<std::string, std::string>> cells;
    for (const auto &w : workloads::all())
        cells.emplace_back(w.name, w.datasets.front().name);
    return cells;
}

/** Simulate the dynamic_baselines predictor set over one cell, from a
 *  recorded trace. */
void
replayCell(harness::Runner &runner, const std::string &workload,
           const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    const trace::Trace &t = runner.traceOf(workload, dataset);
    predict::OneBitPredictor one_bit(prog.branch_sites.size());
    predict::TwoBitPredictor two_bit(prog.branch_sites.size());
    predict::GSharePredictor gshare(12, 12);
    trace::replay(t, {&one_bit, &two_bit, &gshare});
    benchmark::DoNotOptimize(two_bit.percentCorrect());
}

/** The same predictor set fed live: one VM execution per observer. */
void
liveCell(harness::Runner &runner, const std::string &workload,
         const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    const auto &input =
        workloads::get(workload).datasets.front().input;
    predict::OneBitPredictor one_bit(prog.branch_sites.size());
    predict::TwoBitPredictor two_bit(prog.branch_sites.size());
    predict::GSharePredictor gshare(12, 12);
    vm::Machine machine(prog);
    vm::RunLimits limits = bench::defaultLimits();
    machine.run(input, limits, &one_bit);
    machine.run(input, limits, &two_bit);
    machine.run(input, limits, &gshare);
    benchmark::DoNotOptimize(two_bit.percentCorrect());
    (void)dataset;
}

/** The counting-observer path, live: one VM execution per cell with a
 *  SiteCountObserver attached — the profile-counting consumer whose
 *  hot-replay speedup the --min-hot-speedup bar holds. */
void
countingLiveCell(harness::Runner &runner, const std::string &workload)
{
    const isa::Program &prog = runner.program(workload);
    const auto &input = workloads::get(workload).datasets.front().input;
    analysis::SiteCountObserver counts(prog.branch_sites.size());
    vm::Machine machine(prog);
    machine.run(input, bench::defaultLimits(), &counts);
    benchmark::DoNotOptimize(counts.counts().size());
}

/** The counting-observer path, hot: replay the memoized trace. */
void
countingHotCell(harness::Runner &runner, const std::string &workload,
                const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    const trace::Trace &t = runner.traceOf(workload, dataset);
    analysis::SiteCountObserver counts(prog.branch_sites.size());
    trace::replay(t, counts);
    benchmark::DoNotOptimize(counts.counts().size());
}

/** Delete the on-disk traces so the next traceOf re-records. */
void
dropTraceFiles(const std::string &cache_dir)
{
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache_dir, ec)) {
        if (entry.path().extension() == ".trace")
            std::filesystem::remove(entry.path(), ec);
    }
}

/** Snapshot of the batched-replay counters, for per-phase deltas
 *  (totals across a phase's repetitions, not best-rep only). */
struct ReplaySnapshot
{
    int64_t decode_micros = 0;
    int64_t dispatch_micros = 0;
    int64_t blocks = 0;

    static ReplaySnapshot
    now()
    {
        return {obs::counter("replay.decode_micros").value(),
                obs::counter("replay.dispatch_micros").value(),
                obs::counter("replay.blocks").value()};
    }

    ReplaySnapshot
    minus(const ReplaySnapshot &since) const
    {
        return {decode_micros - since.decode_micros,
                dispatch_micros - since.dispatch_micros,
                blocks - since.blocks};
    }
};

int
runAbMode(double min_speedup, double min_hot_speedup,
          const std::string &out_path)
{
    const int kRepetitions = bench::kBestOfRepetitions;
    const bool batch = trace::batchReplay();

    std::printf("micro_trace --ab: live-observed vs trace replay "
                "(min_speedup=%.2f, min_hot_speedup=%.2f, batch=%s)\n\n",
                min_speedup, min_hot_speedup, batch ? "on" : "off");

    // A private cache directory: the stats cache warms normally, but
    // trace cold/warm phases control their own .trace files.
    EnvGuard cache_guard("IFPROB_CACHE");
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("ifprob-trace-ab-" + std::to_string(::getpid())))
            .string();
    std::filesystem::create_directories(cache_dir);
    ::setenv("IFPROB_CACHE", cache_dir.c_str(), 1);

    harness::Runner runner;
    const auto cells = primaryCells();

    // Compile everything up front so the live phase measures execution,
    // not compilation.
    for (const auto &[w, d] : cells)
        runner.program(w);

    // Live phase: the historical path — one VM execution per predictor.
    const int64_t live_best = bench::bestOfMicros(
        [](int) {},
        [&] {
            for (const auto &[w, d] : cells)
                liveCell(runner, w, d);
        },
        kRepetitions);

    // Cold: record once + replay the three predictors. Trace files and
    // the in-memory memo are dropped before each repetition, so every
    // repetition pays one full execution plus encode per cell.
    const ReplaySnapshot before_cold = ReplaySnapshot::now();
    const int64_t cold_best = bench::bestOfMicros(
        [&](int) {
            dropTraceFiles(cache_dir);
            runner.resetTraces();
        },
        [&] {
            for (const auto &[w, d] : cells)
                replayCell(runner, w, d);
        },
        kRepetitions);

    // Warm: the memo is dropped but the .trace files survive, so each
    // cell is a disk load + replay — the steady state across bench
    // binaries sharing one cache directory.
    const ReplaySnapshot before_warm = ReplaySnapshot::now();
    const int64_t warm_best = bench::bestOfMicros(
        [&](int) { runner.resetTraces(); },
        [&] {
            for (const auto &[w, d] : cells)
                replayCell(runner, w, d);
        },
        kRepetitions);

    // Hot: traces memoized in memory — replay cost only, the steady
    // state within one binary.
    const ReplaySnapshot before_hot = ReplaySnapshot::now();
    const int64_t hot_best = bench::bestOfMicros(
        [](int) {},
        [&] {
            for (const auto &[w, d] : cells)
                replayCell(runner, w, d);
        },
        kRepetitions);

    // Counting-observer path: live is ONE execution per cell (the
    // recorder-side profile consumer observes a single run), hot is the
    // memoized replay of the same events — the pairing the >= 10x
    // hot-vs-live acceptance bar is about.
    const int64_t counting_live_best = bench::bestOfMicros(
        [](int) {},
        [&] {
            for (const auto &cell : cells)
                countingLiveCell(runner, cell.first);
        },
        kRepetitions);
    const ReplaySnapshot before_counting = ReplaySnapshot::now();
    const int64_t counting_hot_best = bench::bestOfMicros(
        [](int) {},
        [&] {
            for (const auto &[w, d] : cells)
                countingHotCell(runner, w, d);
        },
        kRepetitions);
    const ReplaySnapshot after_counting = ReplaySnapshot::now();

    const ReplaySnapshot cold_replay = before_warm.minus(before_cold);
    const ReplaySnapshot warm_replay = before_hot.minus(before_warm);
    const ReplaySnapshot hot_replay = before_counting.minus(before_hot);
    const ReplaySnapshot counting_replay =
        after_counting.minus(before_counting);

    int64_t events_total = 0;
    int64_t trace_bytes_total = 0;
    for (const auto &[w, d] : cells) {
        const trace::Trace &t = runner.traceOf(w, d);
        events_total += t.events;
        trace_bytes_total += t.byteSize();
    }

    const harness::CacheStats cache = runner.cacheStats();
    auto speedup = [&](int64_t micros) {
        return micros > 0 ? static_cast<double>(live_best) /
                                static_cast<double>(micros)
                          : 0.0;
    };
    const double speedup_cold = speedup(cold_best);
    const double speedup_warm = speedup(warm_best);
    const double speedup_hot = speedup(hot_best);
    const double speedup_hot_counting =
        counting_hot_best > 0
            ? static_cast<double>(counting_live_best) /
                  static_cast<double>(counting_hot_best)
            : 0.0;
    const bool ok =
        speedup_cold >= min_speedup &&
        (min_hot_speedup <= 0.0 ||
         speedup_hot_counting >= min_hot_speedup);

    std::printf("  %zu cells, %lld events, %.1f MiB encoded "
                "(%.2f bytes/event)\n",
                cells.size(), static_cast<long long>(events_total),
                static_cast<double>(trace_bytes_total) / (1024.0 * 1024.0),
                events_total > 0
                    ? static_cast<double>(trace_bytes_total) /
                          static_cast<double>(events_total)
                    : 0.0);
    std::printf("  live observed %8.1f ms   (3 executions/cell, best "
                "of %d)\n",
                static_cast<double>(live_best) / 1e3, kRepetitions);
    std::printf("  trace cold    %8.1f ms   speedup %5.2fx  (record + "
                "replay)\n",
                static_cast<double>(cold_best) / 1e3, speedup_cold);
    std::printf("  trace warm    %8.1f ms   speedup %5.2fx  (disk load "
                "+ replay)\n",
                static_cast<double>(warm_best) / 1e3, speedup_warm);
    std::printf("  trace hot     %8.1f ms   speedup %5.2fx  (replay "
                "only)\n",
                static_cast<double>(hot_best) / 1e3, speedup_hot);
    std::printf("  counting live %8.1f ms   (1 execution/cell, best "
                "of %d)\n",
                static_cast<double>(counting_live_best) / 1e3,
                kRepetitions);
    std::printf("  counting hot  %8.1f ms   speedup %5.2fx  (replay -> "
                "site counts)\n",
                static_cast<double>(counting_hot_best) / 1e3,
                speedup_hot_counting);

    obs::JsonObject json;
    json.field("schema", "ifprob.trace_bench.v2")
        .field("min_speedup", min_speedup)
        .field("min_hot_speedup", min_hot_speedup)
        .field("batch", int64_t{batch ? 1 : 0})
        .field("repetitions", int64_t{kRepetitions})
        .field("jobs", int64_t{exec::plannedJobs()})
        .field("cells", static_cast<int64_t>(cells.size()))
        .field("events_total", events_total)
        .field("trace_bytes_total", trace_bytes_total)
        .field("live_micros", live_best)
        .field("cold_micros", cold_best)
        .field("warm_micros", warm_best)
        .field("hot_micros", hot_best)
        .field("counting_live_micros", counting_live_best)
        .field("counting_hot_micros", counting_hot_best)
        .field("speedup_cold", speedup_cold)
        .field("speedup_warm", speedup_warm)
        .field("speedup_hot", speedup_hot)
        .field("speedup_hot_counting", speedup_hot_counting)
        .field("cold_decode_micros", cold_replay.decode_micros)
        .field("cold_dispatch_micros", cold_replay.dispatch_micros)
        .field("warm_decode_micros", warm_replay.decode_micros)
        .field("warm_dispatch_micros", warm_replay.dispatch_micros)
        .field("hot_decode_micros", hot_replay.decode_micros)
        .field("hot_dispatch_micros", hot_replay.dispatch_micros)
        .field("counting_decode_micros", counting_replay.decode_micros)
        .field("counting_dispatch_micros",
               counting_replay.dispatch_micros)
        .field("replay_blocks", obs::counter("replay.blocks").value())
        .field("trace_cache_hits", cache.trace_hits)
        .field("trace_cache_misses", cache.trace_misses)
        .field("trace_cache_read_failures", cache.trace_read_failures)
        .field("trace_cache_bytes_read", cache.trace_bytes_read)
        .field("trace_cache_bytes_written", cache.trace_bytes_written)
        .field("replay_events",
               obs::counter("trace.replay_events").value())
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        return 1;

    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    std::printf("  cold speedup %.2fx, counting hot speedup %.2fx: %s\n",
                speedup_cold, speedup_hot_counting,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_trace.json");
    if (flags.ab)
        return runAbMode(flags.min_speedup, flags.min_hot_speedup,
                         flags.out_path);

    int bench_argc = static_cast<int>(flags.passthrough.size());
    benchmark::Initialize(&bench_argc, flags.passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               flags.passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

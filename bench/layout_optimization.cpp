/**
 * @file
 * Profile-guided code layout (paper §2, "Jumps"): the paper *assumes*
 * an ILP compiler eliminates almost all unconditional jumps by
 * rearranging code, and excludes them from break counting on that
 * basis. This bench validates the assumption with an actual layout
 * pass: dynamic jump counts before and after trace-based reordering,
 * under profile feedback vs a heuristic predictor.
 */
#include <cstdio>

#include "bench_util.h"
#include "compiler/layout.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Profile-guided code layout",
                   "Fisher & Freudenberger 1992, §2 (avoidable jumps)",
                   "Dynamic unconditional jumps per 1000 instructions, "
                   "before and after\ntrace-based block reordering. The "
                   "paper assumes a good ILP compiler\nremoves almost "
                   "all jumps this way; feedback-guided layout should "
                   "get\nclosest.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "jumps/1k before",
                     "feedback layout", "heuristic layout",
                     "jumps removed (feedback)"});
    for (const auto &w : workloads::all()) {
        const auto &dataset = w.datasets.front();
        const isa::Program &baseline_prog = runner.program(w.name);
        const auto &baseline = runner.stats(w.name, dataset.name);
        profile::ProfileDb db =
            harness::profileOf(runner, w.name, dataset.name);

        auto jumps_per_1k = [](const vm::RunStats &stats) {
            return 1000.0 * static_cast<double>(stats.jumps) /
                   static_cast<double>(stats.instructions);
        };

        // Feedback-guided layout. The re-laid-out image needs only
        // aggregate jump counts, so the trace plane serves its stats
        // from the variant-fingerprint-keyed cache on warm runs
        // (docs/trace.md); IFPROB_TRACE_PLANE=reference keeps the
        // historical direct execution as the differential oracle.
        isa::Program with_feedback = baseline_prog;
        predict::ProfilePredictor feedback(db);
        layoutProgram(with_feedback, feedback, db);
        vm::RunLimits limits = bench::defaultLimits();
        vm::RunStats feedback_stats;
        if (trace::referencePlane()) {
            vm::Machine feedback_machine(with_feedback);
            feedback_stats =
                feedback_machine.run(dataset.input, limits).stats;
        } else {
            feedback_stats =
                runner.traceOf(w.name, dataset.name, with_feedback).stats;
        }

        // Heuristic-guided layout (no profile available at the layout
        // decision — weights still come from the profile db only for
        // trace seeding order).
        isa::Program with_heuristic = baseline_prog;
        predict::HeuristicPredictor backward(
            baseline_prog, predict::Heuristic::kBackwardTaken);
        layoutProgram(with_heuristic, backward, db);
        vm::Machine heuristic_machine(with_heuristic);
        auto heuristic_run = heuristic_machine.run(dataset.input, limits);

        double removed =
            baseline.jumps > 0
                ? 100.0 *
                      (1.0 - static_cast<double>(feedback_stats.jumps) /
                                 static_cast<double>(baseline.jumps))
                : 0.0;
        table.addRow({w.name, dataset.name,
                      strPrintf("%.1f", jumps_per_1k(baseline)),
                      strPrintf("%.1f", jumps_per_1k(feedback_stats)),
                      strPrintf("%.1f", jumps_per_1k(heuristic_run.stats)),
                      strPrintf("%.0f%%", removed)});
    }
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

/**
 * @file
 * Extension of the paper's §3 remark that "the distribution of runs of
 * instructions between mispredicted branches will not be constant":
 * measures the actual run-length distribution between breaks (under
 * self-prediction) for a representative workload set, showing how far
 * the p10/p90 spread stretches around the mean that Figures 2/Table 3
 * report.
 */
#include <cstdio>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "harness/experiments.h"
#include "ilp/runlength.h"
#include "metrics/report.h"
#include "predict/profile_predictor.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Run-length distribution between breaks",
                   "Fisher & Freudenberger 1992, §3 (ILP candidate sets)",
                   "Instructions between consecutive breaks under "
                   "self-prediction. The paper\nnotes branches are not "
                   "evenly spaced: a heavy upper tail (p90 >> mean)\n"
                   "means more exploitable ILP than the mean alone "
                   "suggests.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "mean", "geomean", "p10", "p50",
                     "p90", "% instrs in runs >= 64"});
    for (const char *name :
         {"tomcatv", "fpppp", "doduc", "spice", "li", "eqntott",
          "compress", "espresso", "mcc", "spiff"}) {
        const auto &w = workloads::get(name);
        const auto &dataset = w.datasets.front();
        const isa::Program &prog = runner.program(name);
        predict::ProfilePredictor self(
            harness::profileOf(runner, name, dataset.name));
        ilp::RunLengthAnalyzer analyzer(self);
        int64_t instructions = 0;
        if (trace::referencePlane()) {
            // Differential oracle: live-observed VM execution.
            vm::Machine machine(prog);
            auto result = machine.run(dataset.input,
                                      bench::defaultLimits(), &analyzer);
            instructions = result.stats.instructions;
        } else {
            // Replay the recorded event stream (docs/trace.md).
            const trace::Trace &tr = runner.traceOf(name, dataset.name);
            trace::replay(tr, analyzer);
            instructions = tr.stats.instructions;
        }
        auto s = std::move(analyzer).summary(instructions);
        table.addRow({name, dataset.name, strPrintf("%.0f", s.mean),
                      strPrintf("%.0f", s.geomean),
                      withCommas(s.p10), withCommas(s.p50),
                      withCommas(s.p90),
                      strPrintf("%.0f%%",
                                100.0 * s.fractionInRunsAtLeast(64))});
    }
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

/**
 * @file
 * The branch observatory (docs/characterization.md): per-static-branch
 * predictability fingerprints computed on the replay plane. One
 * recorded trace per (workload, dataset) cell — served by
 * Runner::traceOf — is replayed through a FingerprintBuilder, then
 * merged into cross-dataset site summaries, a per-workload report
 * scored on instructions-per-mispredict, and a ranked hard-branch
 * table (mispredicts above the profile-optimal static choice).
 *
 * Output is bit-identical at any --jobs value: cells fingerprint in
 * parallel into private slots and the merge runs serially in registry
 * order, so CI byte-diffs the jobs=1 and jobs=4 runs.
 *
 * Flags: --workloads=a,b,c restricts the matrix (default: all 14),
 * --top=N sizes the hard-branch table (default 10), --out=PATH moves
 * BENCH_characterize.json. The JSON carries an "ifprob.characterize.v1"
 * record with per-workload detail nested; flat per-workload lines are
 * mirrored through the run-report sink for tools/obsreport.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "characterize/characterize.h"
#include "harness/runner.h"
#include "obs/json.h"
#include "support/str.h"

using namespace ifprob;

namespace {

/** Flat fields shared by the mirrored line and the nested detail. */
obs::JsonObject
workloadRecord(const characterize::WorkloadReport &r)
{
    int64_t rle_bytes = 0;
    for (const characterize::SiteSummary &s : r.sites)
        rle_bytes += s.rle_bytes;
    obs::JsonObject json;
    json.field("schema", "ifprob.characterize.v1")
        .field("workload", r.workload)
        .field("fortran_like", r.fortran_like)
        .field("datasets", int64_t{r.datasets})
        .field("static_sites", int64_t{r.static_sites})
        .field("executed_sites", int64_t{r.executed_sites})
        .field("instructions", r.instructions)
        .field("branches", r.branches)
        .field("taken", r.taken)
        .field("best_static_loss", r.best_static_loss)
        .field("pooled_static_loss", r.pooled_static_loss)
        .field("flip_loss", r.pooled_static_loss - r.best_static_loss)
        .field("instr_per_mispredict", r.instrPerMispredict())
        .field("pooled_instr_per_mispredict",
               r.pooledInstrPerMispredict())
        .field("mean_h0", r.mean_h0)
        .field("mean_h1", r.mean_h1)
        .field("rle_bits_per_branch",
               r.branches > 0 ? 8.0 * static_cast<double>(rle_bytes) /
                                    static_cast<double>(r.branches)
                              : 0.0)
        .field("stable_branch_pct", r.stable_branch_pct)
        .field("full_coverage_pct", r.full_coverage_pct);
    return json;
}

/** The nested "hard" array of one workload's detail object. */
std::string
hardArray(const characterize::WorkloadReport &r)
{
    std::string out = "[";
    for (size_t i = 0; i < r.hard.size(); ++i) {
        const characterize::HardBranch &hb = r.hard[i];
        obs::JsonObject json;
        json.field("site_id", int64_t{hb.site_id})
            .field("where", hb.where)
            .field("kind", hb.kind)
            .field("executed", hb.executed)
            .field("loss", hb.loss)
            .field("loss_share", hb.loss_share)
            .field("taken_pct", hb.taken_pct)
            .field("h0", hb.h0)
            .field("local8_pct", hb.local8_pct)
            .field("global8_pct", hb.global8_pct)
            .field("stability_pct", hb.stability_pct)
            .field("datasets_executed", int64_t{hb.datasets_executed});
        if (i > 0)
            out += ",";
        out += json.str();
    }
    out += "]";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::AbFlags flags =
        bench::parseAbFlags(argc, argv, "BENCH_characterize.json");

    std::vector<std::string> names;
    int top_n = 10;
    for (size_t i = 1; i < flags.passthrough.size(); ++i) {
        const char *arg = flags.passthrough[i];
        if (std::strncmp(arg, "--workloads=", 12) == 0) {
            for (const std::string &n : split(arg + 12, ','))
                if (!n.empty())
                    names.push_back(n);
        } else if (std::strncmp(arg, "--top=", 6) == 0) {
            top_n = std::atoi(arg + 6);
        } else if (std::strcmp(arg, "--jobs") == 0 ||
                   std::strcmp(arg, "-j") == 0) {
            ++i; // value already consumed by initJobs
        } else if (std::strncmp(arg, "--jobs=", 7) == 0 ||
                   std::strncmp(arg, "-j", 2) == 0) {
            // consumed by initJobs
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs N] [--workloads=a,b,c] "
                         "[--top=N] [--out=PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::heading(
        "Branch observatory: per-branch predictability fingerprints",
        "Fisher & Freudenberger 1992, §3 + Figure 3",
        "Every static branch fingerprinted from recorded traces: taken "
        "rate, direction-\nstream entropy (H0/H1 and an RLE size "
        "proxy), run lengths, self- vs global-\nhistory correlation, "
        "and cross-dataset stability. 'loss' is mispredicts above\nthe "
        "profile-optimal static choice — the part no static predictor "
        "recovers.");

    harness::Runner runner;
    std::vector<characterize::WorkloadReport> reports =
        characterize::characterizeAll(runner, names, top_n);

    metrics::TextTable summary;
    summary.setHeader({"program", "type", "ds", "sites", "branches",
                       "taken", "H0", "H1", "instr/mp", "pooled i/mp",
                       "stable", "covered"});
    for (const characterize::WorkloadReport &r : reports) {
        summary.addRow(
            {r.workload, r.fortran_like ? "FORT" : "C",
             strPrintf("%d", r.datasets),
             strPrintf("%d/%d", r.executed_sites, r.static_sites),
             withCommas(r.branches),
             strPrintf("%.1f%%",
                       r.branches > 0
                           ? 100.0 * static_cast<double>(r.taken) /
                                 static_cast<double>(r.branches)
                           : 0.0),
             strPrintf("%.3f", r.mean_h0), strPrintf("%.3f", r.mean_h1),
             bench::perBreak(r.instrPerMispredict()),
             bench::perBreak(r.pooledInstrPerMispredict()),
             strPrintf("%.1f%%", r.stable_branch_pct),
             strPrintf("%.1f%%", r.full_coverage_pct)});
    }
    bench::emitTable("characterize_workloads", summary);

    std::printf("Hard branches (top %d per program by loss = mispredicts "
                "above the per-dataset\noptimal static direction):\n\n",
                top_n);
    metrics::TextTable hard;
    hard.setHeader({"program", "where", "kind", "executed", "loss",
                    "share", "taken", "H0", "loc8", "glob8", "stable",
                    "ds"});
    for (size_t ri = 0; ri < reports.size(); ++ri) {
        if (ri > 0)
            hard.addRule();
        for (const characterize::HardBranch &hb : reports[ri].hard) {
            hard.addRow({reports[ri].workload, hb.where, hb.kind,
                         withCommas(hb.executed), withCommas(hb.loss),
                         strPrintf("%.1f%%", 100.0 * hb.loss_share),
                         strPrintf("%.1f%%", hb.taken_pct),
                         strPrintf("%.3f", hb.h0),
                         strPrintf("%.1f%%", hb.local8_pct),
                         strPrintf("%.1f%%", hb.global8_pct),
                         strPrintf("%.0f%%", hb.stability_pct),
                         strPrintf("%d", hb.datasets_executed)});
        }
    }
    bench::emitTable("characterize_hard", hard);

    // The Figure 3 lens: how much of each workload's dynamic branch
    // stream sits at sites every dataset reaches and agrees on.
    std::printf("Cross-dataset stability ('stable' = branches at sites "
                "whose majority direction\nevery dataset agrees on; "
                "'covered' = branches at sites every dataset executes "
                "—\n100%% minus this is the Figure 3 coverage-gap "
                "exposure):\n\n");
    for (const characterize::WorkloadReport &r : reports) {
        std::printf("  %-10s stable %5.1f%%  covered %5.1f%%  flip loss "
                    "%s mispredicts\n",
                    r.workload.c_str(), r.stable_branch_pct,
                    r.full_coverage_pct,
                    withCommas(r.pooled_static_loss - r.best_static_loss)
                        .c_str());
    }
    std::printf("\n");

    // Mirror one flat per-workload record per line for obsreport ...
    obs::enableRunReportsDefault("bench/out");
    auto &sink = obs::ReportSink::global();
    for (const characterize::WorkloadReport &r : reports) {
        if (sink.enabled())
            sink.writeLine(workloadRecord(r).str());
    }

    // ... and one nested rollup document as BENCH_characterize.json.
    int64_t instructions = 0, branches = 0, taken = 0;
    int64_t best_loss = 0, pooled_loss = 0, datasets = 0, sites = 0;
    std::string detail = "[";
    for (size_t i = 0; i < reports.size(); ++i) {
        const characterize::WorkloadReport &r = reports[i];
        instructions += r.instructions;
        branches += r.branches;
        taken += r.taken;
        best_loss += r.best_static_loss;
        pooled_loss += r.pooled_static_loss;
        datasets += r.datasets;
        sites += r.executed_sites;
        obs::JsonObject w = workloadRecord(r);
        w.fieldRaw("hard", hardArray(r));
        if (i > 0)
            detail += ",";
        detail += w.str();
    }
    detail += "]";

    obs::JsonObject json;
    json.field("schema", "ifprob.characterize.v1")
        .field("workloads", static_cast<int64_t>(reports.size()))
        .field("datasets", datasets)
        .field("sites", sites)
        .field("instructions", instructions)
        .field("branches", branches)
        .field("taken", taken)
        .field("best_static_loss", best_loss)
        .field("pooled_static_loss", pooled_loss)
        .field("instr_per_mispredict",
               static_cast<double>(instructions) /
                   static_cast<double>(std::max<int64_t>(best_loss, 1)))
        .field("pooled_instr_per_mispredict",
               static_cast<double>(instructions) /
                   static_cast<double>(std::max<int64_t>(pooled_loss, 1)))
        .fieldRaw("workloads_detail", detail);
    if (!bench::emitBenchRecord(flags.out_path, json))
        return 1;

    bench::footer();
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks for the infrastructure itself:
 * compiler throughput, VM dispatch rate on arithmetic- and branch-heavy
 * kernels (for both interpreter cores), profile merging, and predictor
 * evaluation. These guard the experiment harness's performance rather
 * than reproducing a paper result.
 *
 * `micro_vm --ab` bypasses the benchmark framework and runs the engine
 * matrix comparison directly: it measures MIPS for the switch, fast,
 * and trace cores on each kernel (two untimed warmups first, so the
 * trace machine tiers up to its profile-guided plan before timing),
 * writes BENCH_vm.json (plus a mirrored "ifprob.vm_bench.v2" line
 * through the run-report sink), and exits nonzero if any engine fails
 * the --min-speedup bar versus switch (default 1.0) or the trace tier
 * fails --min-trace-vs-fast on the branchy kernels. CI runs this as
 * the perf-smoke step.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/engine.h"
#include "vm/jit/superblock.h"
#include "vm/jit/tier.h"
#include "vm/jit/trace_unit.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kArithKernel = R"(
int main() {
    int i, sum;
    sum = 0;
    for (i = 0; i < 400000; i++)
        sum = sum + (i * 3 & 1023) - (i >> 2);
    return sum & 255;
})";

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 150000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

// The branchy half of the matrix: kernels dominated by *biased*
// conditional branches — the control-flow shape the paper's programs
// exhibit (Figure 4: most branches go one way nearly always) and the
// one the trace tier compiles superblocks across.

const char *kBiasedKernel = R"(
int main() {
    int i, x, hits;
    x = 12345;
    hits = 0;
    for (i = 0; i < 200000; i++) {
        x = (x * 1103515245 + 12345) & 2147483647;
        if ((x & 511) != 0)
            hits = hits + 1;
        if ((x & 1023) != 0)
            hits = hits + 2;
        if ((x & 2047) != 0)
            hits = hits + 1;
        if ((x & 4095) != 0)
            hits = hits + 1;
        else
            hits = hits - 3;
    }
    return hits & 255;
})";

const char *kChainKernel = R"(
int main() {
    int i, n;
    n = 0;
    for (i = 0; i < 120000; i++) {
        if ((i & 511) != 0)
            n = n + 1;
        if ((i & 1023) != 0)
            n = n + 2;
        if ((i & 2047) != 0)
            n = n + 1;
        if ((i & 4095) != 0)
            n = n + 3;
        if ((i & 8191) != 0)
            n = n + 1;
        if ((i & 16383) != 0)
            n = n + 2;
        if ((i & 1023) != 0)
            n = n + 1;
        if ((i & 2047) != 0)
            n = n + 1;
    }
    return n & 255;
})";

void
BM_CompileLiSource(benchmark::State &state)
{
    const auto &li = workloads::get("li");
    for (auto _ : state) {
        isa::Program p = compile(li.source);
        benchmark::DoNotOptimize(p.staticSize());
    }
}
BENCHMARK(BM_CompileLiSource)->Unit(benchmark::kMillisecond);

void
BM_VmArithmeticDispatch(benchmark::State &state, vm::Engine engine)
{
    isa::Program p = compile(kArithKernel);
    vm::Machine m(p, engine);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_VmArithmeticDispatch, fast, vm::Engine::kFast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmArithmeticDispatch, switch, vm::Engine::kSwitch)
    ->Unit(benchmark::kMillisecond);

void
BM_VmBranchDispatch(benchmark::State &state, vm::Engine engine)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p, engine);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_VmBranchDispatch, fast, vm::Engine::kFast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmBranchDispatch, switch, vm::Engine::kSwitch)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmBranchDispatch, trace, vm::Engine::kTrace)
    ->Unit(benchmark::kMillisecond);

void
BM_VmBiasedDispatch(benchmark::State &state, vm::Engine engine)
{
    isa::Program p = compile(kBiasedKernel);
    vm::Machine m(p, engine);
    m.run(""); // let the trace machine tier up before timing
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_VmBiasedDispatch, fast, vm::Engine::kFast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmBiasedDispatch, trace, vm::Engine::kTrace)
    ->Unit(benchmark::kMillisecond);

void
BM_ProfileMergeScaled(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    std::vector<profile::ProfileDb> dbs;
    for (int i = 0; i < 8; ++i)
        dbs.emplace_back("kernel", p.fingerprint(), stats);
    for (auto _ : state) {
        auto merged = profile::ProfileDb::merge(
            dbs, profile::MergeMode::kScaled);
        benchmark::DoNotOptimize(merged.totalExecuted());
    }
}
BENCHMARK(BM_ProfileMergeScaled);

void
BM_PredictorEvaluation(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto q = predict::evaluate(stats, predictor);
        benchmark::DoNotOptimize(q.mispredicted);
    }
}
BENCHMARK(BM_PredictorEvaluation);

void
BM_BreakAccounting(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto summary = metrics::breaksWithPredictor(stats, predictor);
        benchmark::DoNotOptimize(summary.instructionsPerBreak());
    }
}
BENCHMARK(BM_BreakAccounting);

// ---------------------------------------------------------------------------
// --ab mode: three-way engine matrix, BENCH_vm.json emission.
// ---------------------------------------------------------------------------

struct AbMeasurement
{
    int64_t instructions = 0; ///< per single run
    int64_t best_micros = 0;  ///< min over the timed repetitions
    vm::JitRunStats jit;      ///< from the last timed run (trace engine)

    /** Instruction counts are identical across repetitions (same
     *  program, same input), so MIPS over the best micros equals the
     *  best per-rep MIPS. */
    double
    mips() const
    {
        return best_micros > 0 ? static_cast<double>(instructions) /
                                     static_cast<double>(best_micros)
                               : 0.0;
    }
};

/** One timed run folded into @p m (best-of across calls). */
void
timedRun(const vm::Machine &machine, AbMeasurement &m)
{
    bench::timeIntoBest(m.best_micros, [&] {
        auto r = machine.run("");
        m.instructions = r.stats.instructions;
        m.jit = r.jit;
    });
}

int
runAbMode(double min_speedup, double min_trace_vs_fast,
          const std::string &out_path)
{
    struct Kernel
    {
        const char *name;
        const char *source;
        bool branchy; ///< dominated by biased conditional branches
    };
    const Kernel kernels[] = {{"arith", kArithKernel, false},
                              {"branch", kBranchKernel, false},
                              {"biased", kBiasedKernel, true},
                              {"chain", kChainKernel, true}};
    const vm::jit::SuperblockConfig superblock_defaults;
    const vm::jit::TierConfig tier_defaults;

    std::printf("micro_vm --ab: switch vs fast vs trace engines "
                "(computed_goto=%d, min_speedup=%.2f, "
                "min_trace_vs_fast=%.2f)\n\n",
                vm::fastEngineUsesComputedGoto() ? 1 : 0, min_speedup,
                min_trace_vs_fast);

    obs::JsonObject json;
    json.field("schema", "ifprob.vm_bench.v2")
        .field("computed_goto",
               int64_t{vm::fastEngineUsesComputedGoto() ? 1 : 0})
        .field("dispatch", vm::fastEngineUsesComputedGoto()
                               ? "computed_goto"
                               : "switch")
        .field("trace_tier", int64_t{1})
        .field("superblock_max_steps",
               int64_t{superblock_defaults.max_steps})
        .field("superblock_max_traces",
               int64_t{superblock_defaults.max_traces})
        .field("jit_hot_threshold", tier_defaults.hot_threshold)
        .field("min_speedup", min_speedup)
        .field("min_trace_vs_fast", min_trace_vs_fast);

    bool ok = true;
    double worst_fast_speedup = 0.0;   ///< fast vs switch
    double worst_trace_speedup = 0.0;  ///< trace vs switch
    double worst_trace_vs_fast = 0.0;  ///< branchy kernels only
    double worst_side_exit_rate = 0.0;
    double branchy_coverage = 1.0; ///< min trace coverage, branchy half
    bool first = true;
    bool first_branchy = true;
    for (const Kernel &k : kernels) {
        isa::Program p = compile(k.source);
        // Placement-sampled best-of-7 (see bench_util.h's
        // kBestOfRepetitions rationale): each repetition gets a fresh
        // trio of machines, all kept alive until the kernel is done, so
        // every rep's decoded stream / trace steps / memory image lands
        // on new heap placements. Within a rep the timed runs are
        // interleaved across engines so a noisy window penalizes all
        // three equally. The trace machine takes two warmups: the first
        // crosses the hotness threshold and tiers up, the second
        // re-warms on the profile-guided plan.
        std::vector<std::unique_ptr<vm::Machine>> alive;
        AbMeasurement ms, mf, mt;
        vm::Machine *fast = nullptr;
        vm::Machine *trace = nullptr;
        for (int rep = 0; rep < bench::kBestOfRepetitions; ++rep) {
            auto &ref = *alive.emplace_back(std::make_unique<vm::Machine>(
                p, vm::Engine::kSwitch));
            fast = alive
                       .emplace_back(std::make_unique<vm::Machine>(
                           p, vm::Engine::kFast))
                       .get();
            trace = alive
                        .emplace_back(std::make_unique<vm::Machine>(
                            p, vm::Engine::kTrace))
                        .get();
            ref.run("");
            fast->run("");
            trace->run("");
            trace->run("");
            timedRun(ref, ms);
            timedRun(*fast, mf);
            timedRun(*trace, mt);
        }
        const double fast_speedup =
            ms.mips() > 0.0 ? mf.mips() / ms.mips() : 0.0;
        const double trace_speedup =
            ms.mips() > 0.0 ? mt.mips() / ms.mips() : 0.0;
        const double trace_vs_fast =
            mf.mips() > 0.0 ? mt.mips() / mf.mips() : 0.0;
        const double coverage =
            mt.instructions > 0
                ? static_cast<double>(mt.jit.trace_instructions) /
                      static_cast<double>(mt.instructions)
                : 0.0;
        const double side_exit_rate =
            mt.jit.guards > 0
                ? static_cast<double>(mt.jit.side_exits) /
                      static_cast<double>(mt.jit.guards)
                : 0.0;
        const auto build = trace->jitBuildStats();

        if (first || fast_speedup < worst_fast_speedup)
            worst_fast_speedup = fast_speedup;
        if (first || trace_speedup < worst_trace_speedup)
            worst_trace_speedup = trace_speedup;
        if (side_exit_rate > worst_side_exit_rate)
            worst_side_exit_rate = side_exit_rate;
        first = false;
        if (k.branchy) {
            if (first_branchy || trace_vs_fast < worst_trace_vs_fast)
                worst_trace_vs_fast = trace_vs_fast;
            if (coverage < branchy_coverage)
                branchy_coverage = coverage;
            first_branchy = false;
            if (trace_vs_fast < min_trace_vs_fast)
                ok = false;
        }
        if (fast_speedup < min_speedup || trace_speedup < min_speedup)
            ok = false;

        const auto &ds = fast->decodeStats();
        std::printf(
            "  %-6s %10lld insns  switch %7.1f  fast %7.1f  trace %7.1f "
            "MIPS  speedup %5.2fx/%5.2fx  trace/fast %5.2fx\n"
            "         traces %lld (%s)  coverage %5.1f%%  side-exit "
            "%6.3f%%  guards/pass %lld  fused %lld/%lld slots\n",
            k.name, static_cast<long long>(mt.instructions), ms.mips(),
            mf.mips(), mt.mips(), fast_speedup, trace_speedup, trace_vs_fast,
            static_cast<long long>(build.traces), build.source.c_str(),
            100.0 * coverage, 100.0 * side_exit_rate,
            static_cast<long long>(build.guards),
            static_cast<long long>(ds.fusedSlots()),
            static_cast<long long>(ds.instructions));

        const std::string prefix = k.name;
        json.field(prefix + "_instructions", mt.instructions)
            .field(prefix + "_branchy", int64_t{k.branchy ? 1 : 0})
            .field(prefix + "_switch_mips", ms.mips())
            .field(prefix + "_fast_mips", mf.mips())
            .field(prefix + "_trace_mips", mt.mips())
            .field(prefix + "_fast_speedup", fast_speedup)
            .field(prefix + "_trace_speedup", trace_speedup)
            .field(prefix + "_trace_vs_fast", trace_vs_fast)
            .field(prefix + "_traces", build.traces)
            .field(prefix + "_trace_source", build.source)
            .field(prefix + "_trace_coverage", coverage)
            .field(prefix + "_side_exit_rate", side_exit_rate)
            .field(prefix + "_trace_loop_iterations",
                   mt.jit.trace_loop_iterations)
            .field(prefix + "_decode_micros", ds.decode_micros)
            .field(prefix + "_fused_slots", ds.fusedSlots())
            .field(prefix + "_decoded_slots", ds.instructions)
            .field(prefix + "_fusion_rate", ds.fusionRate());
    }
    // The v2 headline `worst_speedup` describes the engine this record
    // is about — the trace tier — across every kernel; the fast
    // engine's own worst case keeps its signal in a named field.
    json.field("worst_speedup", worst_trace_speedup)
        .field("worst_fast_speedup", worst_fast_speedup)
        .field("worst_trace_speedup", worst_trace_speedup)
        .field("worst_trace_vs_fast", worst_trace_vs_fast)
        .field("trace_coverage", branchy_coverage)
        .field("side_exit_rate", worst_side_exit_rate)
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        ok = false;

    std::printf("  worst trace speedup %.2fx (fast %.2fx, trace/fast on "
                "branchy %.2fx): %s\n",
                worst_trace_speedup, worst_fast_speedup,
                worst_trace_vs_fast, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_vm.json");
    if (flags.ab)
        return runAbMode(flags.min_speedup, flags.min_trace_vs_fast,
                         flags.out_path);

    int bench_argc = static_cast<int>(flags.passthrough.size());
    benchmark::Initialize(&bench_argc, flags.passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               flags.passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

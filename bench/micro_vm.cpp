/**
 * @file
 * google-benchmark microbenchmarks for the infrastructure itself:
 * compiler throughput, VM dispatch rate on arithmetic- and branch-heavy
 * kernels, profile merging, and predictor evaluation. These guard the
 * experiment harness's performance rather than reproducing a paper
 * result.
 */
#include <benchmark/benchmark.h>

#include "compiler/pipeline.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kArithKernel = R"(
int main() {
    int i, sum;
    sum = 0;
    for (i = 0; i < 100000; i++)
        sum = sum + (i * 3 & 1023) - (i >> 2);
    return sum & 255;
})";

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 50000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

void
BM_CompileLiSource(benchmark::State &state)
{
    const auto &li = workloads::get("li");
    for (auto _ : state) {
        isa::Program p = compile(li.source);
        benchmark::DoNotOptimize(p.staticSize());
    }
}
BENCHMARK(BM_CompileLiSource)->Unit(benchmark::kMillisecond);

void
BM_VmArithmeticDispatch(benchmark::State &state)
{
    isa::Program p = compile(kArithKernel);
    vm::Machine m(p);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmArithmeticDispatch)->Unit(benchmark::kMillisecond);

void
BM_VmBranchDispatch(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmBranchDispatch)->Unit(benchmark::kMillisecond);

void
BM_ProfileMergeScaled(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    std::vector<profile::ProfileDb> dbs;
    for (int i = 0; i < 8; ++i)
        dbs.emplace_back("kernel", p.fingerprint(), stats);
    for (auto _ : state) {
        auto merged = profile::ProfileDb::merge(
            dbs, profile::MergeMode::kScaled);
        benchmark::DoNotOptimize(merged.totalExecuted());
    }
}
BENCHMARK(BM_ProfileMergeScaled);

void
BM_PredictorEvaluation(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto q = predict::evaluate(stats, predictor);
        benchmark::DoNotOptimize(q.mispredicted);
    }
}
BENCHMARK(BM_PredictorEvaluation);

void
BM_BreakAccounting(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto summary = metrics::breaksWithPredictor(stats, predictor);
        benchmark::DoNotOptimize(summary.instructionsPerBreak());
    }
}
BENCHMARK(BM_BreakAccounting);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks for the infrastructure itself:
 * compiler throughput, VM dispatch rate on arithmetic- and branch-heavy
 * kernels (for both interpreter cores), profile merging, and predictor
 * evaluation. These guard the experiment harness's performance rather
 * than reproducing a paper result.
 *
 * `micro_vm --ab` bypasses the benchmark framework and runs the engine
 * A/B comparison directly: it measures MIPS for the fast and switch
 * cores on each kernel, writes BENCH_vm.json (plus a mirrored
 * "ifprob.vm_bench.v1" line through the run-report sink), and exits
 * nonzero if the fast core fails the --min-speedup bar (default 1.0 —
 * i.e. fast must never be slower). CI runs this as the perf-smoke step.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compiler/pipeline.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/engine.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

const char *kArithKernel = R"(
int main() {
    int i, sum;
    sum = 0;
    for (i = 0; i < 100000; i++)
        sum = sum + (i * 3 & 1023) - (i >> 2);
    return sum & 255;
})";

const char *kBranchKernel = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 50000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if (x & 2)
            count = count + 2;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

void
BM_CompileLiSource(benchmark::State &state)
{
    const auto &li = workloads::get("li");
    for (auto _ : state) {
        isa::Program p = compile(li.source);
        benchmark::DoNotOptimize(p.staticSize());
    }
}
BENCHMARK(BM_CompileLiSource)->Unit(benchmark::kMillisecond);

void
BM_VmArithmeticDispatch(benchmark::State &state, vm::Engine engine)
{
    isa::Program p = compile(kArithKernel);
    vm::Machine m(p, engine);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_VmArithmeticDispatch, fast, vm::Engine::kFast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmArithmeticDispatch, switch, vm::Engine::kSwitch)
    ->Unit(benchmark::kMillisecond);

void
BM_VmBranchDispatch(benchmark::State &state, vm::Engine engine)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p, engine);
    int64_t instructions = 0;
    for (auto _ : state) {
        auto r = m.run("");
        instructions += r.stats.instructions;
    }
    state.counters["Mips"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_VmBranchDispatch, fast, vm::Engine::kFast)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_VmBranchDispatch, switch, vm::Engine::kSwitch)
    ->Unit(benchmark::kMillisecond);

void
BM_ProfileMergeScaled(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    std::vector<profile::ProfileDb> dbs;
    for (int i = 0; i < 8; ++i)
        dbs.emplace_back("kernel", p.fingerprint(), stats);
    for (auto _ : state) {
        auto merged = profile::ProfileDb::merge(
            dbs, profile::MergeMode::kScaled);
        benchmark::DoNotOptimize(merged.totalExecuted());
    }
}
BENCHMARK(BM_ProfileMergeScaled);

void
BM_PredictorEvaluation(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto q = predict::evaluate(stats, predictor);
        benchmark::DoNotOptimize(q.mispredicted);
    }
}
BENCHMARK(BM_PredictorEvaluation);

void
BM_BreakAccounting(benchmark::State &state)
{
    isa::Program p = compile(kBranchKernel);
    vm::Machine m(p);
    auto stats = m.run("").stats;
    profile::ProfileDb db("kernel", p.fingerprint(), stats);
    predict::ProfilePredictor predictor(db);
    for (auto _ : state) {
        auto summary = metrics::breaksWithPredictor(stats, predictor);
        benchmark::DoNotOptimize(summary.instructionsPerBreak());
    }
}
BENCHMARK(BM_BreakAccounting);

// ---------------------------------------------------------------------------
// --ab mode: direct fast-vs-switch comparison, BENCH_vm.json emission.
// ---------------------------------------------------------------------------

struct AbMeasurement
{
    int64_t instructions = 0; ///< per single run
    double mips = 0.0;        ///< best of the timed repetitions
};

/** Best-of-N MIPS for one kernel on one engine (1 warmup + N timed). */
AbMeasurement
measureEngine(const vm::Machine &machine, int repetitions)
{
    AbMeasurement m;
    m.instructions = machine.run("").stats.instructions; // warmup
    for (int i = 0; i < repetitions; ++i) {
        const int64_t t0 = obs::nowMicros();
        auto r = machine.run("");
        const int64_t micros = obs::nowMicros() - t0;
        if (micros > 0)
            m.mips = std::max(
                m.mips, static_cast<double>(r.stats.instructions) /
                            static_cast<double>(micros));
    }
    return m;
}

int
runAbMode(double min_speedup, const std::string &out_path)
{
    struct Kernel
    {
        const char *name;
        const char *source;
    };
    const Kernel kernels[] = {{"arith", kArithKernel},
                              {"branch", kBranchKernel}};
    const int kRepetitions = 7;

    std::printf("micro_vm --ab: fast vs switch engine "
                "(computed_goto=%d, min_speedup=%.2f)\n\n",
                vm::fastEngineUsesComputedGoto() ? 1 : 0, min_speedup);

    obs::JsonObject json;
    json.field("schema", "ifprob.vm_bench.v1")
        .field("computed_goto",
               int64_t{vm::fastEngineUsesComputedGoto() ? 1 : 0})
        .field("min_speedup", min_speedup);

    bool ok = true;
    double worst_speedup = 0.0;
    bool first = true;
    for (const Kernel &k : kernels) {
        isa::Program p = compile(k.source);
        vm::Machine fast(p, vm::Engine::kFast);
        vm::Machine ref(p, vm::Engine::kSwitch);
        AbMeasurement mf = measureEngine(fast, kRepetitions);
        AbMeasurement ms = measureEngine(ref, kRepetitions);
        const double speedup = ms.mips > 0.0 ? mf.mips / ms.mips : 0.0;
        if (first || speedup < worst_speedup)
            worst_speedup = speedup;
        first = false;
        if (speedup < min_speedup)
            ok = false;

        const auto &ds = fast.decodeStats();
        std::printf("  %-6s %10lld insns  fast %8.1f MIPS  switch %8.1f "
                    "MIPS  speedup %5.2fx\n"
                    "         decode %lldus  fused %lld/%lld slots "
                    "(%.1f%%: cmp+br %lld, movI+alu %lld, "
                    "movI+alu+br %lld)\n",
                    k.name, static_cast<long long>(mf.instructions),
                    mf.mips, ms.mips, speedup,
                    static_cast<long long>(ds.decode_micros),
                    static_cast<long long>(ds.fusedSlots()),
                    static_cast<long long>(ds.instructions),
                    100.0 * ds.fusionRate(),
                    static_cast<long long>(ds.fused_cmp_br),
                    static_cast<long long>(ds.fused_movi_alu),
                    static_cast<long long>(ds.fused_movi_alu_br));

        const std::string prefix = k.name;
        json.field(prefix + "_instructions", mf.instructions)
            .field(prefix + "_fast_mips", mf.mips)
            .field(prefix + "_switch_mips", ms.mips)
            .field(prefix + "_speedup", speedup)
            .field(prefix + "_decode_micros", ds.decode_micros)
            .field(prefix + "_fused_slots", ds.fusedSlots())
            .field(prefix + "_decoded_slots", ds.instructions)
            .field(prefix + "_fusion_rate", ds.fusionRate());
    }
    json.field("worst_speedup", worst_speedup)
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        ok = false;

    std::printf("  worst speedup %.2fx: %s\n", worst_speedup,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_vm.json");
    if (flags.ab)
        return runAbMode(flags.min_speedup, flags.out_path);

    int bench_argc = static_cast<int>(flags.passthrough.size());
    benchmark::Initialize(&bench_argc, flags.passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               flags.passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

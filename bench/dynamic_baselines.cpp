/**
 * @file
 * The dynamic-prediction baselines the paper's related-work section
 * cites ([Smith 81], [Lee and Smith 84]): simple hardware schemes
 * predicted 80-90% of branches in systems codes and 95-100% in
 * scientific FORTRAN. Simulates 1-bit, 2-bit, and gshare per-site
 * predictors over each program's primary dataset, next to the static
 * profile predictors.
 *
 * The three dynamic predictors are fed from the branch-trace plane
 * (docs/trace.md): the VM executes each workload once through
 * Runner::traceOf and every predictor simulates from the recorded event
 * stream. IFPROB_TRACE_PLANE=reference restores the historical
 * one-execution-per-observer path; CI diffs the two planes' tables.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "predict/dynamic_predictor.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Dynamic baselines (1-bit / 2-bit)",
                   "Smith 81 / Lee & Smith 84 cross-check",
                   "Percent of conditional branches correctly predicted, "
                   "plus the paper's\ninstructions-per-mispredict (i/mp) "
                   "for the 2-bit hardware scheme and the\nstatic "
                   "self-profile — the same units as Figures 1-3. "
                   "Expected shape:\nFORTRAN/FP programs 95-100%, "
                   "C/integer programs 80-95%; static profile\n"
                   "self-prediction is competitive with the 2-bit "
                   "hardware scheme.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "1-bit", "2-bit",
                     "gshare-4k", "static self", "static others",
                     "2-bit i/mp", "self i/mp"});
    for (const auto &w : workloads::all()) {
        const auto &d = w.datasets.front();
        const isa::Program &prog = runner.program(w.name);

        predict::OneBitPredictor one_bit(prog.branch_sites.size());
        predict::TwoBitPredictor two_bit(prog.branch_sites.size());
        predict::GSharePredictor gshare(/*log2_entries=*/12,
                                        /*history_bits=*/12);
        if (trace::referencePlane()) {
            // Differential oracle: one full VM execution per observer.
            const auto &input =
                workloads::get(w.name).datasets.front().input;
            vm::Machine machine(prog);
            vm::RunLimits limits = bench::defaultLimits();
            machine.run(input, limits, &one_bit);
            machine.run(input, limits, &two_bit);
            machine.run(input, limits, &gshare);
        } else {
            // Execute once, simulate all three from the recording.
            const trace::Trace &tr = runner.traceOf(w.name, d.name);
            trace::replay(tr, {&one_bit, &two_bit, &gshare});
        }

        const auto &stats = runner.stats(w.name, d.name);
        predict::ProfilePredictor self(
            harness::profileOf(runner, w.name, d.name));
        const auto self_quality = predict::evaluate(stats, self);
        double self_pct = self_quality.percentCorrect();
        // A single-dataset workload has no "other" runs to merge; the
        // cell is empty rather than silently repeating self_pct.
        std::string others_cell = "—";
        if (w.datasets.size() > 1) {
            std::vector<profile::ProfileDb> others;
            for (size_t i = 1; i < w.datasets.size(); ++i)
                others.push_back(
                    harness::profileOf(runner, w.name, w.datasets[i].name));
            profile::ProfileDb merged = profile::ProfileDb::merge(
                others, profile::MergeMode::kScaled);
            predict::ProfilePredictor other_pred(merged);
            others_cell = strPrintf(
                "%.1f%%",
                predict::evaluate(stats, other_pred).percentCorrect());
        }
        // The paper's figure of merit: executed instructions between
        // mispredicted branches (no mispredicts at all renders as an
        // empty cell rather than a made-up number).
        auto instrPerMispredict = [&](int64_t mispredicts) -> std::string {
            if (mispredicts <= 0)
                return "—";
            return bench::perBreak(
                static_cast<double>(stats.instructions) /
                static_cast<double>(mispredicts));
        };
        table.addRow({w.name, d.name,
                      strPrintf("%.1f%%", one_bit.percentCorrect()),
                      strPrintf("%.1f%%", two_bit.percentCorrect()),
                      strPrintf("%.1f%%", gshare.percentCorrect()),
                      strPrintf("%.1f%%", self_pct), others_cell,
                      instrPerMispredict(two_bit.mispredicted()),
                      instrPerMispredict(self_quality.mispredicted)});
    }
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

/**
 * @file
 * Reproduces Table 1: the dynamic fraction of executed instructions that
 * global dead-code elimination would have removed. The paper had to run
 * with DCE disabled to keep IFPROBBER and MFPixie branch counts
 * synchronized, and measured this as the cost of doing so.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "support/str.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Table 1", "Fisher & Freudenberger 1992, Table 1",
                   "Dynamic dead code that DCE would have eliminated "
                   "(experiments run with DCE\noff, as in the paper). "
                   "Paper values ranged 0% (li) to 29% (matrix300); "
                   "expect\nsmall fractions here too, nonzero where "
                   "workloads carry constant-guarded code.");
    metrics::TextTable table;
    table.setHeader({"program", "dead code (dynamic)"});
    for (const auto &row : harness::table1())
        table.addRow({row.program,
                      strPrintf("%.1f%%", 100.0 * row.dead_fraction)});
    std::printf("%s\n", table.render().c_str());
    bench::footer();
    return 0;
}

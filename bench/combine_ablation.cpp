/**
 * @file
 * Reproduces the "Scaled vs unscaled summary predictors" informal
 * observation (§3): scaled and unscaled sums perform indistinguishably on
 * average, polling performs poorly.
 */
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "support/str.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Combination-strategy ablation",
                   "Fisher & Freudenberger 1992, §3 informal observations",
                   "Combining the other datasets' profiles: unscaled raw "
                   "counts vs scaled\n(equal total weight per dataset) vs "
                   "polling (one vote each). Paper: scaled\nand unscaled "
                   "indistinguishable on average, polling discarded as "
                   "poor.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "scaled", "unscaled", "polling"});
    double scaled_sum = 0, unscaled_sum = 0, polling_sum = 0;
    int n = 0;
    for (const auto &r : harness::combineAblation(runner)) {
        table.addRow({r.program, r.dataset,
                      bench::perBreak(r.scaled_per_break),
                      bench::perBreak(r.unscaled_per_break),
                      bench::perBreak(r.polling_per_break)});
        // Aggregate in log space: these span orders of magnitude.
        scaled_sum += std::log(r.scaled_per_break);
        unscaled_sum += std::log(r.unscaled_per_break);
        polling_sum += std::log(r.polling_per_break);
        ++n;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean instrs/break: scaled=%.1f unscaled=%.1f "
                "polling=%.1f\n\n",
                std::exp(scaled_sum / n), std::exp(unscaled_sum / n),
                std::exp(polling_sum / n));
    bench::footer();
    return 0;
}

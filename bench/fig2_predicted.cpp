/**
 * @file
 * Reproduces Figures 2a and 2b: instructions per mispredicted branch.
 * Black bars: best possible static prediction (each dataset predicts
 * itself). White bars: prediction from the scaled sum of all the OTHER
 * datasets of the program. Indirect calls and their returns always count
 * as breaks; direct calls/returns and jumps do not (as in the paper).
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"

using namespace ifprob;

namespace {

void
render(const std::vector<harness::Fig2Row> &rows, bool spice_only)
{
    std::printf(spice_only ? "--- Figure 2a: spice2g6 datasets ---\n"
                           : "--- Figure 2b: C / integer programs ---\n");
    double max_v = 0.0;
    for (const auto &r : rows) {
        bool is_spice = r.program == "spice";
        if (is_spice == spice_only && (spice_only || !r.fortran_like))
            max_v = std::max(max_v, r.self_per_break);
    }
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "self (best possible)",
                     "sum of others (scaled)", "self bar"});
    for (const auto &r : rows) {
        bool is_spice = r.program == "spice";
        if (is_spice != spice_only)
            continue;
        if (!spice_only && r.fortran_like)
            continue;
        if (r.num_datasets < 2)
            continue;
        table.addRow({r.program, r.dataset,
                      bench::perBreak(r.self_per_break),
                      bench::perBreak(r.others_per_break),
                      metrics::asciiBar(r.self_per_break, max_v, 30)});
    }
    bench::emitTable(spice_only ? "fig2a_spice_datasets"
                                : "fig2b_c_programs",
                     table);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Figure 2a / 2b", "Fisher & Freudenberger 1992, Fig 2",
                   "Instructions per mispredicted branch. Paper shape: "
                   "spice predicts much\nworse across datasets but stays "
                   ">100 instrs/break (unidirectional branches);\nC "
                   "programs land ~40-160 and the scaled sum of other "
                   "datasets tracks the\nself-prediction bound closely.");
    harness::Runner runner;
    auto rows = harness::figure2(runner);
    render(rows, /*spice_only=*/true);
    render(rows, /*spice_only=*/false);
    bench::footer();
    return 0;
}

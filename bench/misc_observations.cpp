/**
 * @file
 * Reproduces three of the paper's narrative results:
 *  1. §3 opening anomaly: percent-correct is the wrong measure — fpppp
 *     and li predict ~equally per-branch (83% vs 85% in the paper) while
 *     differing ~17x in branch density.
 *  2. "Branch percent taken as a program constant": within a program,
 *     percent-taken varies a few points across datasets — except spice.
 *  3. compress vs uncompress: one program, two modes, no correlation —
 *     using one mode to predict the other "is a very bad idea".
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "support/str.h"

using namespace ifprob;

namespace {

void
fppppVsLi(harness::Runner &runner)
{
    std::printf("--- Percent-correct is the wrong measure (paper: fpppp "
                "83%% vs li 85%%) ---\n");
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "branches correct (self)",
                     "instrs between branches", "instrs/mispredict"});
    for (const auto &[program, dataset] :
         {std::pair<const char *, const char *>{"fpppp", "4atoms"},
          {"li", "8queens"}}) {
        const auto &stats = runner.stats(program, dataset);
        predict::ProfilePredictor self(
            harness::profileOf(runner, program, dataset));
        auto quality = predict::evaluate(stats, self);
        table.addRow({program, dataset,
                      strPrintf("%.1f%%", quality.percentCorrect()),
                      strPrintf("%.1f", 1.0 / stats.branchDensity()),
                      bench::perBreak(harness::selfPredictedPerBreak(
                          runner, program, dataset))});
    }
    std::printf("%s\n", table.render().c_str());
}

void
takenConstancy(harness::Runner &runner)
{
    std::printf("--- Branch percent-taken as a program constant (paper: "
                "max spread 9 points\n    except spice2g6, which spans "
                "21%%..76%%) ---\n");
    metrics::TextTable table;
    table.setHeader({"program", "datasets", "%taken min", "%taken max",
                     "spread"});
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 2)
            continue;
        double lo = 101.0, hi = -1.0;
        for (const auto &d : w.datasets) {
            double taken = runner.stats(w.name, d.name).percentTaken();
            lo = std::min(lo, taken);
            hi = std::max(hi, taken);
        }
        table.addRow({w.name, strPrintf("%zu", w.datasets.size()),
                      strPrintf("%.0f%%", lo), strPrintf("%.0f%%", hi),
                      strPrintf("%.0f", hi - lo)});
    }
    std::printf("%s\n", table.render().c_str());
}

void
compressVsUncompress(harness::Runner &runner)
{
    std::printf("--- compress vs uncompress: one binary, two modes "
                "(paper: \"no correlation\") ---\n");
    // Both workloads share the same compiled image (same fingerprint), so
    // a profile from one mode can legally be applied to the other.
    metrics::TextTable table;
    table.setHeader({"target", "predictor", "instrs/break",
                     "% of self bound"});
    const char *primary = "long";
    for (const auto &[target, other] :
         {std::pair<const char *, const char *>{"compress", "uncompress"},
          {"uncompress", "compress"}}) {
        const auto &target_stats = runner.stats(target, primary);
        double self = harness::selfPredictedPerBreak(runner, target,
                                                     primary);
        double same_mode = harness::othersPredictedPerBreak(
            runner, target, primary, profile::MergeMode::kScaled);
        predict::ProfilePredictor cross(
            harness::profileOf(runner, other, primary));
        double cross_break =
            metrics::breaksWithPredictor(target_stats, cross)
                .instructionsPerBreak();
        table.addRow({target, "itself (bound)", bench::perBreak(self),
                      "100%"});
        table.addRow({target, "other datasets, same mode",
                      bench::perBreak(same_mode),
                      strPrintf("%.0f%%", 100.0 * same_mode / self)});
        table.addRow({target, std::string("the other mode (") + other + ")",
                      bench::perBreak(cross_break),
                      strPrintf("%.0f%%", 100.0 * cross_break / self)});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Informal observations",
                   "Fisher & Freudenberger 1992, §3",
                   "The fpppp/li percent-correct anomaly, percent-taken "
                   "constancy, and the\ncompress/uncompress cross-mode "
                   "prediction failure.");
    harness::Runner runner;
    fppppVsLi(runner);
    takenConstancy(runner);
    compressVsUncompress(runner);
    bench::footer();
    return 0;
}

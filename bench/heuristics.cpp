/**
 * @file
 * Reproduces the "Simple opcode heuristics" informal observation (§3):
 * non-profile heuristics cost about a factor of two in instructions per
 * break compared with profile feedback, except on very predictable
 * vectorizable codes.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"
#include "support/str.h"

using namespace ifprob;

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Heuristics vs profile feedback",
                   "Fisher & Freudenberger 1992, §3 informal observations",
                   "Static heuristics (loop/non-loop, opcode rules) "
                   "against profile feedback.\nPaper: heuristics usually "
                   "give up about a factor of two in instrs/break.");
    harness::Runner runner;
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "self", "others(scaled)",
                     "backward-taken", "opcode-rules", "always-taken",
                     "profile/heuristic"});
    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (const auto &r : harness::heuristics(runner)) {
        double best_heuristic = std::max(r.backward_taken_per_break,
                                         r.opcode_rules_per_break);
        double ratio = best_heuristic > 0.0
                           ? r.others_per_break / best_heuristic
                           : 0.0;
        ratio_sum += ratio;
        ++ratio_count;
        table.addRow({r.program, r.dataset, bench::perBreak(r.self_per_break),
                      bench::perBreak(r.others_per_break),
                      bench::perBreak(r.backward_taken_per_break),
                      bench::perBreak(r.opcode_rules_per_break),
                      bench::perBreak(r.always_taken_per_break),
                      strPrintf("%.2fx", ratio)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("geomean-ish (arith mean) profile advantage over best "
                "heuristic: %.2fx\n\n",
                ratio_sum / ratio_count);
    bench::footer();
    return 0;
}

/**
 * @file
 * Reproduces Figures 1a and 1b: instructions per break in control when
 * branches are NOT predicted. Black bars count all conditional branches
 * plus unavoidable breaks (indirect calls and their returns); white bars
 * additionally count direct subroutine calls and returns.
 */
#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "metrics/report.h"

using namespace ifprob;

namespace {

void
render(const std::vector<harness::Fig1Row> &rows, bool fortran_like,
       const char *title)
{
    std::printf("--- %s ---\n", title);
    double max_v = 0.0;
    for (const auto &r : rows) {
        if (r.fortran_like == fortran_like)
            max_v = std::max(max_v, r.per_break);
    }
    metrics::TextTable table;
    table.setHeader({"program", "dataset", "instrs/break",
                     "instrs/break (+calls)", "no-prediction bar"});
    for (const auto &r : rows) {
        if (r.fortran_like != fortran_like)
            continue;
        table.addRow({r.program, r.dataset, bench::perBreak(r.per_break),
                      bench::perBreak(r.per_break_with_calls),
                      metrics::asciiBar(r.per_break, max_v, 30)});
    }
    bench::emitTable(fortran_like ? "fig1a_no_prediction"
                                  : "fig1b_no_prediction",
                     table);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initJobs(argc, argv);
    bench::heading("Figure 1a / 1b", "Fisher & Freudenberger 1992, Fig 1",
                   "Instructions per break in control, branches NOT "
                   "predicted.\nPaper shape: fpppp ~150-170; other FORTRAN "
                   "~15-25; C programs ~5-17.\nBlack bar = conditional "
                   "branches + indirect calls/returns; white (+calls)\n"
                   "column adds direct calls and returns.");
    harness::Runner runner;
    auto rows = harness::figure1(runner);
    render(rows, true, "Figure 1a: FORTRAN / floating point");
    render(rows, false, "Figure 1b: C / integer");
    bench::footer();
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks for the ingest plane
 * (docs/ingest.md): batch folding, merge-on-read snapshots in each
 * MergeMode, and the IFPROBPS segment round-trip.
 *
 * `micro_ingest --ab` bypasses the framework and runs the ingest load
 * generator: the workload matrix's real RunStats become randomized
 * client batches (shuffled deltas, random chunk sizes, shuffled batch
 * order) replayed over the exec pool while snapshot readers pull
 * merged databases concurrently. It reports sustained folded
 * events/sec, fold and snapshot latency percentiles, segment
 * save/load timings, and verifies every snapshot bit-identical to the
 * reference ProfileDb::merge, writing BENCH_ingest.json (schema
 * "ifprob.ingest_bench.v1"). Exits nonzero when throughput misses
 * --min-events-per-sec (default 1M/s) or any snapshot deviates.
 *
 * `micro_ingest --verify --outdir=DIR` is the CI differential smoke:
 * it folds the matrix deterministically, dumps the store snapshot and
 * the reference merge for every mode as text ProfileDbs, and exits
 * nonzero on any byte difference. Run at jobs=1 and jobs=4, the dumps
 * must byte-compare equal — folding is commutative by construction.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "ingest/profile_store.h"
#include "ingest/segment.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "profile/profile_db.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/str.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;
using profile::MergeMode;
using profile::ProfileDb;

constexpr MergeMode kAllModes[] = {MergeMode::kUnscaled,
                                   MergeMode::kScaled,
                                   MergeMode::kPolling};

/** A synthetic batch for the microbenchmarks: @p n deltas spread over
 *  @p num_sites sites. */
ingest::RunReport
syntheticBatch(uint64_t seed, uint32_t num_sites, int n,
               const std::string &source)
{
    Rng rng(seed);
    ingest::RunReport r;
    r.program = "micro";
    r.fingerprint = 0xbead;
    r.source = source;
    r.num_sites = num_sites;
    for (int i = 0; i < n; ++i) {
        const int64_t executed = rng.range(1, 1000);
        r.deltas.push_back({static_cast<uint32_t>(rng.below(num_sites)),
                            executed, rng.range(0, executed)});
    }
    return r;
}

void
BM_FoldBatch256(benchmark::State &state)
{
    ingest::ProfileStore store;
    ingest::RunReport batch = syntheticBatch(1, 4096, 256, "s0");
    for (auto _ : state) {
        store.fold(batch);
        benchmark::DoNotOptimize(&store);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FoldBatch256);

void
BM_Snapshot(benchmark::State &state)
{
    ingest::ProfileStore store;
    for (int s = 0; s < 8; ++s) {
        store.fold(syntheticBatch(static_cast<uint64_t>(s), 4096, 2048,
                                  "src" + std::to_string(s)));
    }
    const MergeMode mode = kAllModes[static_cast<size_t>(state.range(0))];
    for (auto _ : state) {
        ProfileDb db = store.snapshot({"micro", 0xbead}, mode);
        benchmark::DoNotOptimize(db.totalExecuted());
    }
    state.SetItemsProcessed(state.iterations() * 8 * 4096);
}
BENCHMARK(BM_Snapshot)->Arg(0)->Arg(1)->Arg(2);

void
BM_SegmentRoundTrip(benchmark::State &state)
{
    ingest::ProfileStore store;
    for (int s = 0; s < 8; ++s) {
        store.fold(syntheticBatch(static_cast<uint64_t>(s), 4096, 2048,
                                  "src" + std::to_string(s)));
    }
    const auto dir = std::filesystem::temp_directory_path() /
                     ("ifprob-ingest-micro-" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    int64_t bytes = 0;
    for (auto _ : state) {
        store.saveSegments(dir.string());
        ingest::ProfileStore reloaded;
        reloaded.loadSegments(dir.string());
        benchmark::DoNotOptimize(reloaded.images().size());
    }
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        bytes += static_cast<int64_t>(entry.file_size());
    state.SetBytesProcessed(state.iterations() * bytes);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_SegmentRoundTrip);

// ---------------------------------------------------------------------------
// Shared by --ab and --verify: the matrix as ingest batches.
// ---------------------------------------------------------------------------

/** One base report per workload/dataset cell: the cell's real
 *  RunStats counters as a sparse delta batch. */
std::vector<ingest::RunReport>
baseReports(harness::Runner &runner)
{
    struct Cell
    {
        std::string workload, dataset;
    };
    std::vector<Cell> cells;
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets)
            cells.push_back({w.name, d.name});
    }
    // Warm the stats cache in parallel; gathering below is then reads.
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        runner.stats(cells[i].workload, cells[i].dataset);
    });

    std::vector<ingest::RunReport> out;
    out.reserve(cells.size());
    for (const auto &cell : cells) {
        const isa::Program &prog = runner.program(cell.workload);
        const vm::RunStats &stats =
            runner.stats(cell.workload, cell.dataset);
        ingest::RunReport r;
        r.program = cell.workload;
        r.fingerprint = prog.fingerprint();
        r.source = cell.dataset;
        r.num_sites = static_cast<uint32_t>(stats.branches.size());
        for (uint32_t i = 0; i < r.num_sites; ++i) {
            const vm::BranchCounts &b = stats.branches[i];
            if (b.executed != 0)
                r.deltas.push_back({i, b.executed, b.taken});
        }
        out.push_back(std::move(r));
    }
    return out;
}

/** Every distinct image in @p base, in first-seen order. */
std::vector<ingest::ProfileStore::ImageKey>
imageKeys(const std::vector<ingest::RunReport> &base)
{
    std::vector<ingest::ProfileStore::ImageKey> keys;
    for (const auto &r : base) {
        ingest::ProfileStore::ImageKey key{r.program, r.fingerprint};
        if (std::find(keys.begin(), keys.end(), key) == keys.end())
            keys.push_back(key);
    }
    return keys;
}

/** True when every image's snapshot is byte-identical to the
 *  reference ProfileDb::merge of its per-source databases, in every
 *  MergeMode. */
bool
snapshotsMatchReference(const ingest::ProfileStore &store)
{
    bool ok = true;
    for (const auto &key : store.images()) {
        std::vector<ProfileDb> inputs;
        for (const auto &[name, batches] : store.sources(key))
            inputs.push_back(store.sourceDb(key, name));
        for (MergeMode mode : kAllModes) {
            const ProfileDb want = ProfileDb::merge(inputs, mode);
            const ProfileDb got = store.snapshot(key, mode);
            if (got.numSites() != want.numSites() ||
                std::memcmp(got.weights().data(), want.weights().data(),
                            want.numSites() *
                                sizeof(profile::BranchWeight)) != 0) {
                std::fprintf(
                    stderr,
                    "micro_ingest: snapshot of '%s' deviates from the "
                    "reference merge in %s mode\n",
                    key.first.c_str(),
                    std::string(profile::mergeModeName(mode)).c_str());
                ok = false;
            }
        }
    }
    return ok;
}

// ---------------------------------------------------------------------------
// --ab mode: the ingest load generator, BENCH_ingest.json.
// ---------------------------------------------------------------------------

/** Randomized client load: each pass shuffles every cell's deltas,
 *  chunks them into 64..512-delta batches, and the final batch order
 *  is shuffled across cells. Deterministic in @p seed. */
std::vector<ingest::RunReport>
makeLoad(const std::vector<ingest::RunReport> &base, int64_t target_events,
         uint64_t seed)
{
    Rng rng(seed);
    std::vector<ingest::RunReport> batches;
    int64_t events = 0;
    while (events < target_events) {
        for (const auto &r : base) {
            std::vector<ingest::SiteDelta> deltas = r.deltas;
            for (size_t i = deltas.size(); i > 1; --i)
                std::swap(deltas[i - 1], deltas[rng.below(i)]);
            size_t pos = 0;
            while (pos < deltas.size()) {
                const size_t n = std::min(
                    deltas.size() - pos,
                    static_cast<size_t>(rng.range(64, 512)));
                ingest::RunReport b;
                b.program = r.program;
                b.fingerprint = r.fingerprint;
                b.source = r.source;
                b.num_sites = r.num_sites;
                b.deltas.assign(
                    deltas.begin() + static_cast<ptrdiff_t>(pos),
                    deltas.begin() + static_cast<ptrdiff_t>(pos + n));
                batches.push_back(std::move(b));
                events += static_cast<int64_t>(n);
                pos += n;
            }
        }
    }
    for (size_t i = batches.size(); i > 1; --i)
        std::swap(batches[i - 1], batches[rng.below(i)]);
    return batches;
}

struct RepResult
{
    int64_t wall_micros = 0;
    int64_t fold_p50 = 0, fold_p99 = 0;
    int64_t snap_p50 = 0, snap_p99 = 0;
    int64_t snapshots = 0;
};

int
runAbMode(int64_t target_events, double min_events_per_sec,
          const std::string &out_path)
{
    const int kRepetitions = 3;
    const int kReaders = 2;

    std::printf("micro_ingest --ab: randomized batch ingest under "
                "concurrent snapshot readers "
                "(target %s events, min %s events/sec)\n\n",
                withCommas(target_events).c_str(),
                withCommas(static_cast<long long>(min_events_per_sec))
                    .c_str());

    harness::Runner runner;
    const auto base = baseReports(runner);
    const auto keys = imageKeys(base);
    const auto batches = makeLoad(base, target_events, 0x1f60);
    int64_t total_events = 0;
    for (const auto &b : batches)
        total_events += static_cast<int64_t>(b.deltas.size());

    std::printf("  %zu images, %zu cell reports, %zu batches, %s "
                "events\n",
                keys.size(), base.size(), batches.size(),
                withCommas(total_events).c_str());

    RepResult best;
    std::unique_ptr<ingest::ProfileStore> store; // last repetition's
    for (int rep = 0; rep < kRepetitions; ++rep) {
        store = std::make_unique<ingest::ProfileStore>();
        ingest::ProfileStore &fresh = *store;
        obs::histogram("ingest.fold_micros").reset();
        obs::histogram("ingest.snapshot_micros").reset();
        obs::counter("ingest.snapshots").reset();

        std::atomic<bool> stop{false};
        std::vector<std::thread> readers;
        for (int r = 0; r < kReaders; ++r) {
            readers.emplace_back([&fresh, &stop, &keys, r] {
                size_t i = static_cast<size_t>(r);
                while (!stop.load(std::memory_order_acquire)) {
                    try {
                        ProfileDb db = fresh.snapshot(
                            keys[i % keys.size()], kAllModes[i % 3]);
                        benchmark::DoNotOptimize(db.totalExecuted());
                    } catch (const Error &) {
                        // The store is still empty; keep polling.
                    }
                    ++i;
                }
            });
        }

        const int64_t t0 = obs::nowMicros();
        exec::parallelFor(
            exec::globalPool(), batches.size(),
            [&](size_t i) { fresh.fold(batches[i]); });
        const int64_t wall = obs::nowMicros() - t0;

        stop.store(true, std::memory_order_release);
        for (auto &r : readers)
            r.join();

        RepResult res;
        res.wall_micros = wall;
        res.fold_p50 =
            obs::histogram("ingest.fold_micros").percentileUpperBound(50);
        res.fold_p99 =
            obs::histogram("ingest.fold_micros").percentileUpperBound(99);
        res.snap_p50 = obs::histogram("ingest.snapshot_micros")
                           .percentileUpperBound(50);
        res.snap_p99 = obs::histogram("ingest.snapshot_micros")
                           .percentileUpperBound(99);
        res.snapshots = obs::counter("ingest.snapshots").value();
        if (best.wall_micros == 0 || wall < best.wall_micros)
            best = res;
    }

    const double events_per_sec =
        best.wall_micros > 0
            ? static_cast<double>(total_events) * 1e6 /
                  static_cast<double>(best.wall_micros)
            : 0.0;

    // The quiesced store must match the reference merge bit for bit.
    const bool bit_identical = snapshotsMatchReference(*store);

    // Segment persistence: save, reload into a fresh store, re-verify.
    const std::string seg_dir =
        (std::filesystem::temp_directory_path() /
         ("ifprob-ingest-ab-" + std::to_string(::getpid())))
            .string();
    const int64_t save_t0 = obs::nowMicros();
    const size_t segments = store->saveSegments(seg_dir);
    const int64_t save_micros = obs::nowMicros() - save_t0;
    int64_t segment_bytes = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(seg_dir))
        segment_bytes += static_cast<int64_t>(entry.file_size());
    ingest::ProfileStore reloaded;
    const int64_t load_t0 = obs::nowMicros();
    const size_t loaded = reloaded.loadSegments(seg_dir);
    const int64_t load_micros = obs::nowMicros() - load_t0;
    const bool roundtrip_identical =
        loaded == segments && snapshotsMatchReference(reloaded) &&
        reloaded.images() == store->images();
    {
        std::error_code ec;
        std::filesystem::remove_all(seg_dir, ec);
    }

    const bool ok = bit_identical && roundtrip_identical &&
                    events_per_sec >= min_events_per_sec;

    std::printf("  fold        %8.1f ms wall   %s events/sec "
                "(best of %d)\n",
                static_cast<double>(best.wall_micros) / 1e3,
                withCommas(static_cast<long long>(events_per_sec)).c_str(),
                kRepetitions);
    std::printf("  fold batch  p50 %lld us   p99 %lld us\n",
                static_cast<long long>(best.fold_p50),
                static_cast<long long>(best.fold_p99));
    std::printf("  snapshot    p50 %lld us   p99 %lld us   "
                "(%lld concurrent reads)\n",
                static_cast<long long>(best.snap_p50),
                static_cast<long long>(best.snap_p99),
                static_cast<long long>(best.snapshots));
    std::printf("  segments    %zu files, %.1f MiB, save %.1f ms, "
                "load %.1f ms\n",
                segments,
                static_cast<double>(segment_bytes) / (1024.0 * 1024.0),
                static_cast<double>(save_micros) / 1e3,
                static_cast<double>(load_micros) / 1e3);
    std::printf("  bit-identical to reference merge: %s\n",
                bit_identical && roundtrip_identical ? "yes" : "NO");

    obs::JsonObject json;
    json.field("schema", "ifprob.ingest_bench.v1")
        .field("jobs", int64_t{exec::plannedJobs()})
        .field("repetitions", int64_t{kRepetitions})
        .field("readers", int64_t{kReaders})
        .field("images", static_cast<int64_t>(keys.size()))
        .field("cell_reports", static_cast<int64_t>(base.size()))
        .field("batches", static_cast<int64_t>(batches.size()))
        .field("events", total_events)
        .field("fold_wall_micros", best.wall_micros)
        .field("events_per_sec", events_per_sec)
        .field("fold_p50_micros", best.fold_p50)
        .field("fold_p99_micros", best.fold_p99)
        .field("snapshots", best.snapshots)
        .field("snapshot_p50_micros", best.snap_p50)
        .field("snapshot_p99_micros", best.snap_p99)
        .field("segments", static_cast<int64_t>(segments))
        .field("segment_bytes", segment_bytes)
        .field("segment_save_micros", save_micros)
        .field("segment_load_micros", load_micros)
        .field("min_events_per_sec", min_events_per_sec)
        .field("bit_identical",
               int64_t{bit_identical && roundtrip_identical ? 1 : 0})
        .field("pass", int64_t{ok ? 1 : 0});

    if (!bench::emitBenchRecord(out_path, json))
        return 1;

    std::printf("  %s events/sec (min %s), bit-identical %s: %s\n",
                withCommas(static_cast<long long>(events_per_sec)).c_str(),
                withCommas(static_cast<long long>(min_events_per_sec))
                    .c_str(),
                bit_identical && roundtrip_identical ? "yes" : "no",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --verify mode: deterministic text dumps for the CI byte-diff.
// ---------------------------------------------------------------------------

int
runVerifyMode(const std::string &outdir)
{
    std::printf("micro_ingest --verify: store snapshots vs reference "
                "merge (jobs=%d)\n\n",
                exec::plannedJobs());

    harness::Runner runner;
    const auto base = baseReports(runner);

    // Deterministic load: every cell's deltas in site order, chunked
    // into fixed 512-delta batches. The fold order is whatever the
    // pool schedules — the store's integer accumulators make the
    // result independent of it, which is exactly what the jobs=1 vs
    // jobs=4 byte-diff asserts.
    std::vector<ingest::RunReport> batches;
    for (const auto &r : base) {
        for (size_t pos = 0; pos < r.deltas.size(); pos += 512) {
            const size_t n = std::min<size_t>(512, r.deltas.size() - pos);
            ingest::RunReport b;
            b.program = r.program;
            b.fingerprint = r.fingerprint;
            b.source = r.source;
            b.num_sites = r.num_sites;
            b.deltas.assign(
                r.deltas.begin() + static_cast<ptrdiff_t>(pos),
                r.deltas.begin() + static_cast<ptrdiff_t>(pos + n));
            batches.push_back(std::move(b));
        }
    }
    ingest::ProfileStore store;
    exec::parallelFor(exec::globalPool(), batches.size(),
                      [&](size_t i) { store.fold(batches[i]); });

    std::filesystem::create_directories(outdir);
    bool ok = true;
    for (MergeMode mode : kAllModes) {
        std::ostringstream store_os, ref_os;
        for (const auto &key : store.images()) {
            store.snapshot(key, mode).save(store_os);
            std::vector<ProfileDb> inputs;
            for (const auto &[name, b] : store.sources(key))
                inputs.push_back(store.sourceDb(key, name));
            ProfileDb::merge(inputs, mode).save(ref_os);
        }
        const std::string mode_name{profile::mergeModeName(mode)};
        std::ofstream(outdir + "/ingest_verify_" + mode_name +
                      "_store.txt")
            << store_os.str();
        std::ofstream(outdir + "/ingest_verify_" + mode_name +
                      "_ref.txt")
            << ref_os.str();
        const bool same = store_os.str() == ref_os.str();
        ok = ok && same;
        std::printf("  %-9s snapshot vs reference merge: %s\n",
                    mode_name.c_str(),
                    same ? "byte-identical" : "DIFFERS");
    }
    std::printf("\n  %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ifprob::bench::AbFlags flags =
        ifprob::bench::parseAbFlags(argc, argv, "BENCH_ingest.json");

    int64_t target_events = 2'000'000;
    double min_events_per_sec = 1'000'000.0;
    bool verify = false;
    std::string outdir = ".";
    std::vector<char *> rest;
    rest.push_back(flags.passthrough[0]);
    for (size_t i = 1; i < flags.passthrough.size(); ++i) {
        char *arg = flags.passthrough[i];
        if (std::strncmp(arg, "--events=", 9) == 0) {
            target_events = std::atoll(arg + 9);
        } else if (std::strncmp(arg, "--min-events-per-sec=", 21) == 0) {
            min_events_per_sec = std::atof(arg + 21);
        } else if (std::strcmp(arg, "--verify") == 0) {
            verify = true;
        } else if (std::strncmp(arg, "--outdir=", 9) == 0) {
            outdir = arg + 9;
        } else {
            rest.push_back(arg);
        }
    }

    if (verify)
        return runVerifyMode(outdir);
    if (flags.ab)
        return runAbMode(target_events, min_events_per_sec,
                         flags.out_path);

    int bench_argc = static_cast<int>(rest.size());
    benchmark::Initialize(&bench_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

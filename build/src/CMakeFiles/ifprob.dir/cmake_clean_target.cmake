file(REMOVE_RECURSE
  "libifprob.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/codegen.cpp" "src/CMakeFiles/ifprob.dir/compiler/codegen.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/codegen.cpp.o.d"
  "/root/repo/src/compiler/inline.cpp" "src/CMakeFiles/ifprob.dir/compiler/inline.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/inline.cpp.o.d"
  "/root/repo/src/compiler/layout.cpp" "src/CMakeFiles/ifprob.dir/compiler/layout.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/layout.cpp.o.d"
  "/root/repo/src/compiler/passes.cpp" "src/CMakeFiles/ifprob.dir/compiler/passes.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/passes.cpp.o.d"
  "/root/repo/src/compiler/pipeline.cpp" "src/CMakeFiles/ifprob.dir/compiler/pipeline.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/pipeline.cpp.o.d"
  "/root/repo/src/compiler/prelude.cpp" "src/CMakeFiles/ifprob.dir/compiler/prelude.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/compiler/prelude.cpp.o.d"
  "/root/repo/src/harness/experiments.cpp" "src/CMakeFiles/ifprob.dir/harness/experiments.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/harness/experiments.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/CMakeFiles/ifprob.dir/harness/runner.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/harness/runner.cpp.o.d"
  "/root/repo/src/ilp/runlength.cpp" "src/CMakeFiles/ifprob.dir/ilp/runlength.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/ilp/runlength.cpp.o.d"
  "/root/repo/src/ilp/trace.cpp" "src/CMakeFiles/ifprob.dir/ilp/trace.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/ilp/trace.cpp.o.d"
  "/root/repo/src/isa/cfg.cpp" "src/CMakeFiles/ifprob.dir/isa/cfg.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/isa/cfg.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/ifprob.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/ifprob.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/isa/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/CMakeFiles/ifprob.dir/isa/program.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/isa/program.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/ifprob.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/ifprob.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/lang/parser.cpp.o.d"
  "/root/repo/src/metrics/breaks.cpp" "src/CMakeFiles/ifprob.dir/metrics/breaks.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/metrics/breaks.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/ifprob.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/metrics/report.cpp.o.d"
  "/root/repo/src/predict/evaluate.cpp" "src/CMakeFiles/ifprob.dir/predict/evaluate.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/predict/evaluate.cpp.o.d"
  "/root/repo/src/predict/heuristic_predictor.cpp" "src/CMakeFiles/ifprob.dir/predict/heuristic_predictor.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/predict/heuristic_predictor.cpp.o.d"
  "/root/repo/src/predict/profile_predictor.cpp" "src/CMakeFiles/ifprob.dir/predict/profile_predictor.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/predict/profile_predictor.cpp.o.d"
  "/root/repo/src/profile/profile_db.cpp" "src/CMakeFiles/ifprob.dir/profile/profile_db.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/profile/profile_db.cpp.o.d"
  "/root/repo/src/support/str.cpp" "src/CMakeFiles/ifprob.dir/support/str.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/support/str.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/CMakeFiles/ifprob.dir/vm/machine.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/vm/machine.cpp.o.d"
  "/root/repo/src/vm/run_stats.cpp" "src/CMakeFiles/ifprob.dir/vm/run_stats.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/vm/run_stats.cpp.o.d"
  "/root/repo/src/workloads/datagen.cpp" "src/CMakeFiles/ifprob.dir/workloads/datagen.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/datagen.cpp.o.d"
  "/root/repo/src/workloads/programs/w_compress.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_compress.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_compress.cpp.o.d"
  "/root/repo/src/workloads/programs/w_doduc.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_doduc.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_doduc.cpp.o.d"
  "/root/repo/src/workloads/programs/w_eqntott.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_eqntott.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_eqntott.cpp.o.d"
  "/root/repo/src/workloads/programs/w_espresso.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_espresso.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_espresso.cpp.o.d"
  "/root/repo/src/workloads/programs/w_fpppp.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_fpppp.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_fpppp.cpp.o.d"
  "/root/repo/src/workloads/programs/w_lfk.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_lfk.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_lfk.cpp.o.d"
  "/root/repo/src/workloads/programs/w_li.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_li.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_li.cpp.o.d"
  "/root/repo/src/workloads/programs/w_matrix300.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_matrix300.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_matrix300.cpp.o.d"
  "/root/repo/src/workloads/programs/w_mcc.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_mcc.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_mcc.cpp.o.d"
  "/root/repo/src/workloads/programs/w_nasa7.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_nasa7.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_nasa7.cpp.o.d"
  "/root/repo/src/workloads/programs/w_spice.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_spice.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_spice.cpp.o.d"
  "/root/repo/src/workloads/programs/w_spiff.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_spiff.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_spiff.cpp.o.d"
  "/root/repo/src/workloads/programs/w_tomcatv.cpp" "src/CMakeFiles/ifprob.dir/workloads/programs/w_tomcatv.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/programs/w_tomcatv.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/ifprob.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/ifprob.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

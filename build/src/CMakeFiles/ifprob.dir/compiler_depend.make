# Empty compiler generated dependencies file for ifprob.
# This may be replaced when dependencies are built.

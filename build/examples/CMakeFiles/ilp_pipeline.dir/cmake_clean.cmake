file(REMOVE_RECURSE
  "CMakeFiles/ilp_pipeline.dir/ilp_pipeline.cpp.o"
  "CMakeFiles/ilp_pipeline.dir/ilp_pipeline.cpp.o.d"
  "ilp_pipeline"
  "ilp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

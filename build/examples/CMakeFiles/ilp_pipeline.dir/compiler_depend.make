# Empty compiler generated dependencies file for ilp_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spice_study.dir/spice_study.cpp.o"
  "CMakeFiles/spice_study.dir/spice_study.cpp.o.d"
  "spice_study"
  "spice_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for spice_study.
# This may be replaced when dependencies are built.

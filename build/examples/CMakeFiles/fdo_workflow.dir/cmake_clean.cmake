file(REMOVE_RECURSE
  "CMakeFiles/fdo_workflow.dir/fdo_workflow.cpp.o"
  "CMakeFiles/fdo_workflow.dir/fdo_workflow.cpp.o.d"
  "fdo_workflow"
  "fdo_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdo_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

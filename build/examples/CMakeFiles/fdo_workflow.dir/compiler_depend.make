# Empty compiler generated dependencies file for fdo_workflow.
# This may be replaced when dependencies are built.

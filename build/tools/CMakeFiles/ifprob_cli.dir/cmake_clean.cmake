file(REMOVE_RECURSE
  "CMakeFiles/ifprob_cli.dir/ifprob.cpp.o"
  "CMakeFiles/ifprob_cli.dir/ifprob.cpp.o.d"
  "ifprob"
  "ifprob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifprob_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

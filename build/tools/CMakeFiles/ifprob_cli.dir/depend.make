# Empty dependencies file for ifprob_cli.
# This may be replaced when dependencies are built.

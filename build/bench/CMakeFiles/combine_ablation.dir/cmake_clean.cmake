file(REMOVE_RECURSE
  "CMakeFiles/combine_ablation.dir/combine_ablation.cpp.o"
  "CMakeFiles/combine_ablation.dir/combine_ablation.cpp.o.d"
  "combine_ablation"
  "combine_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for combine_ablation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table3_fortran.
# This may be replaced when dependencies are built.

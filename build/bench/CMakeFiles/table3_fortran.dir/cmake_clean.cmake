file(REMOVE_RECURSE
  "CMakeFiles/table3_fortran.dir/table3_fortran.cpp.o"
  "CMakeFiles/table3_fortran.dir/table3_fortran.cpp.o.d"
  "table3_fortran"
  "table3_fortran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fortran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dynamic_baselines.
# This may be replaced when dependencies are built.

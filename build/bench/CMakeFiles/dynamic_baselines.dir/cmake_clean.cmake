file(REMOVE_RECURSE
  "CMakeFiles/dynamic_baselines.dir/dynamic_baselines.cpp.o"
  "CMakeFiles/dynamic_baselines.dir/dynamic_baselines.cpp.o.d"
  "dynamic_baselines"
  "dynamic_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

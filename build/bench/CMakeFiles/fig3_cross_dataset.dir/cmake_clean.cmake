file(REMOVE_RECURSE
  "CMakeFiles/fig3_cross_dataset.dir/fig3_cross_dataset.cpp.o"
  "CMakeFiles/fig3_cross_dataset.dir/fig3_cross_dataset.cpp.o.d"
  "fig3_cross_dataset"
  "fig3_cross_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cross_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for select_ablation.
# This may be replaced when dependencies are built.

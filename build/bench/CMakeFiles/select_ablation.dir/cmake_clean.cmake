file(REMOVE_RECURSE
  "CMakeFiles/select_ablation.dir/select_ablation.cpp.o"
  "CMakeFiles/select_ablation.dir/select_ablation.cpp.o.d"
  "select_ablation"
  "select_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

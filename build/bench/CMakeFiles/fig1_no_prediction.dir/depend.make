# Empty dependencies file for fig1_no_prediction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_no_prediction.dir/fig1_no_prediction.cpp.o"
  "CMakeFiles/fig1_no_prediction.dir/fig1_no_prediction.cpp.o.d"
  "fig1_no_prediction"
  "fig1_no_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_no_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for trace_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_selection.dir/trace_selection.cpp.o"
  "CMakeFiles/trace_selection.dir/trace_selection.cpp.o.d"
  "trace_selection"
  "trace_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

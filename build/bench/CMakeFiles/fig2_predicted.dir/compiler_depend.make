# Empty compiler generated dependencies file for fig2_predicted.
# This may be replaced when dependencies are built.

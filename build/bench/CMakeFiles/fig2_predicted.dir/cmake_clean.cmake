file(REMOVE_RECURSE
  "CMakeFiles/fig2_predicted.dir/fig2_predicted.cpp.o"
  "CMakeFiles/fig2_predicted.dir/fig2_predicted.cpp.o.d"
  "fig2_predicted"
  "fig2_predicted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_predicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

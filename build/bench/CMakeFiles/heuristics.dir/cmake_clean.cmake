file(REMOVE_RECURSE
  "CMakeFiles/heuristics.dir/heuristics.cpp.o"
  "CMakeFiles/heuristics.dir/heuristics.cpp.o.d"
  "heuristics"
  "heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for heuristics.
# This may be replaced when dependencies are built.

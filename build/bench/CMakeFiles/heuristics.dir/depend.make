# Empty dependencies file for heuristics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runlength_distribution.dir/runlength_distribution.cpp.o"
  "CMakeFiles/runlength_distribution.dir/runlength_distribution.cpp.o.d"
  "runlength_distribution"
  "runlength_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runlength_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for runlength_distribution.
# This may be replaced when dependencies are built.

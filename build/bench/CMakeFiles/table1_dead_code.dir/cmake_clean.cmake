file(REMOVE_RECURSE
  "CMakeFiles/table1_dead_code.dir/table1_dead_code.cpp.o"
  "CMakeFiles/table1_dead_code.dir/table1_dead_code.cpp.o.d"
  "table1_dead_code"
  "table1_dead_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dead_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_dead_code.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/inlining.dir/inlining.cpp.o"
  "CMakeFiles/inlining.dir/inlining.cpp.o.d"
  "inlining"
  "inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

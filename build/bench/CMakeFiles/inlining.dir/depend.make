# Empty dependencies file for inlining.
# This may be replaced when dependencies are built.

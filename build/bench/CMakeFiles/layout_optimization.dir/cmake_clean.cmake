file(REMOVE_RECURSE
  "CMakeFiles/layout_optimization.dir/layout_optimization.cpp.o"
  "CMakeFiles/layout_optimization.dir/layout_optimization.cpp.o.d"
  "layout_optimization"
  "layout_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

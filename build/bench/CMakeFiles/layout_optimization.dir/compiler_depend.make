# Empty compiler generated dependencies file for layout_optimization.
# This may be replaced when dependencies are built.

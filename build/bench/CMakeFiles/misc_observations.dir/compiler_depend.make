# Empty compiler generated dependencies file for misc_observations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/misc_observations.dir/misc_observations.cpp.o"
  "CMakeFiles/misc_observations.dir/misc_observations.cpp.o.d"
  "misc_observations"
  "misc_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ifprob_tests.
# This may be replaced when dependencies are built.

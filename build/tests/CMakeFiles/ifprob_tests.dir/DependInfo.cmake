
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_ilp.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_ilp.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_ilp.cpp.o.d"
  "/root/repo/tests/test_inline.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_inline.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_inline.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_li_lisp.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_li_lisp.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_li_lisp.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_passes.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_passes.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_passes.cpp.o.d"
  "/root/repo/tests/test_predict.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_predict.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_predict.cpp.o.d"
  "/root/repo/tests/test_prelude.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_prelude.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_prelude.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_vm.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_vm.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_vm.cpp.o.d"
  "/root/repo/tests/test_workload_physics.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_workload_physics.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_workload_physics.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/ifprob_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/ifprob_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ifprob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
